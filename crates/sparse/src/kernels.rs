//! Explicitly vectorized inner-loop primitives for the LU hot paths.
//!
//! Profiling the sweep workloads leaves three inner loops holding almost all
//! of the numeric work once the symbolic machinery is amortized:
//!
//! 1. the **scatter/gather axpy** of the numeric refactorization
//!    (`work[cols[i]] -= mult · vals[i]` over a U row's fill pattern),
//! 2. the **per-entry fold** of the single-RHS substitution sweeps
//!    (`acc -= vals[i] · work[cols[i]]`, strictly in order), and
//! 3. the **k-wide panel update** of the blocked multi-RHS solve
//!    (`dst[j] -= v · src[j]` / `dst[j] = dst[j] / diag` over `k` contiguous
//!    right-hand-side lanes), and
//! 4. the **w-wide variant-lane update** of the batched many-variant
//!    refactor/solve (`dst[w] -= a[w] · b[w]` / `dst[w] = dst[w] / den[w]`
//!    over `w` contiguous variant lanes — unlike the panel forms, every
//!    lane carries its *own* factor value, because each lane is an
//!    independent matrix sharing only the fill pattern).
//!
//! This module implements each primitive twice — a portable scalar reference
//! ([`scalar`]) and an AVX2 split-lane `(re, im)` form over
//! `core::arch::x86_64` — and exposes safe per-type dispatchers
//! ([`axpy_indexed_c64`], [`panel_axpy_f64`], …) that select between them
//! with a [`KernelBackend`] value. The solver records the backend **once per
//! symbolic analysis** (see [`selected_backend`] and
//! [`crate::SymbolicLu::kernel_backend`]), so a whole sweep runs one
//! consistent code path.
//!
//! # The bitwise contract
//!
//! Every vector implementation performs **the same IEEE-754 multiplies,
//! additions, subtractions and divisions, in the same per-element order, as
//! the scalar reference**: no FMA contraction, no reassociation across fill
//! entries, no blocked accumulators. Lanes only ever span *independent*
//! elements (distinct scatter targets, or distinct right-hand-side columns
//! of a panel), and sequential dependences — the substitution fold's
//! accumulator — stay sequential with only the independent products
//! vectorized. Consequently the two backends produce bit-identical results
//! on finite data, the property the `proptest_kernels` suite pins and the
//! reason every pre-existing determinism test (refactor-vs-fresh,
//! blocked-vs-single-RHS, `par_determinism`) holds with the SIMD path
//! active.
//!
//! # Backend selection
//!
//! [`selected_backend`] picks AVX2 when `is_x86_feature_detected!` reports
//! it and the portable scalar path otherwise; the `LOOPSCOPE_KERNEL`
//! environment knob ([`KERNEL_ENV`]) overrides the choice (`scalar` forces
//! the fallback everywhere, `avx2` asks for SIMD and still falls back when
//! the CPU lacks it). The knob is read when a factorization's symbolic
//! analysis is built, so with a fixed environment the selection is
//! deterministic for the whole process — and benches/tests can pin a
//! specific backend per pattern through
//! [`crate::SymbolicLu::with_kernel_backend`] without touching the
//! environment.
//!
//! This module is the only place in the crate allowed to use `unsafe`
//! (`core::arch` intrinsics and the split-lane slice reinterpretation); the
//! rest of the crate stays `deny(unsafe_code)`.

use crate::scalar::Scalar;
use loopscope_math::Complex64;
use std::fmt;

/// Environment variable naming the kernel backend (`scalar` forces the
/// portable fallback, `avx2` requests SIMD — honored only when the CPU has
/// it; anything else, or unset, auto-detects). Read when a symbolic
/// analysis is built, so every factorization over one pattern runs one
/// backend.
pub const KERNEL_ENV: &str = "LOOPSCOPE_KERNEL";

/// Which implementation of the vectorized inner-loop primitives a
/// factorization runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The portable scalar reference path — always available, and the
    /// definition of correct results for the SIMD path.
    Scalar,
    /// Split-lane `(re, im)` AVX2 over `core::arch::x86_64`; bit-identical
    /// to [`KernelBackend::Scalar`] on finite data (same ops, same order,
    /// no FMA).
    Avx2,
}

impl KernelBackend {
    /// Short lowercase name (`"scalar"` / `"avx2"`), the same tokens the
    /// [`KERNEL_ENV`] knob accepts.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// `true` for explicitly vectorized backends.
    pub fn is_simd(self) -> bool {
        matches!(self, KernelBackend::Avx2)
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `true` when the running CPU supports the AVX2 kernel path.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Pure selection rule behind [`selected_backend`], exposed so tests can pin
/// it: an explicit `scalar` always wins, an explicit `avx2` (or no request)
/// takes SIMD only when the hardware has it, and unknown values fall back to
/// auto-detection. Matching is case-insensitive and whitespace-tolerant.
pub fn backend_for(request: Option<&str>, simd_available: bool) -> KernelBackend {
    let auto = if simd_available {
        KernelBackend::Avx2
    } else {
        KernelBackend::Scalar
    };
    match request.map(str::trim) {
        Some(s) if s.eq_ignore_ascii_case("scalar") => KernelBackend::Scalar,
        Some(s) if s.eq_ignore_ascii_case("avx2") => auto,
        _ => auto,
    }
}

/// The backend new symbolic analyses record: [`KERNEL_ENV`] applied to the
/// hardware detection by [`backend_for`]. With a fixed environment the
/// result is the same for every call in a process.
pub fn selected_backend() -> KernelBackend {
    backend_for(std::env::var(KERNEL_ENV).ok().as_deref(), simd_available())
}

/// Portable scalar reference implementations of the kernel primitives.
///
/// These loops **define** the arithmetic the SIMD backends must reproduce
/// bit-for-bit; they are also the dispatch target for scalar types other
/// than `f64`/[`Complex64`] and for hardware without AVX2.
pub mod scalar {
    use super::Scalar;

    /// `work[cols[i]] -= mult * vals[i]` for every `i`. Targets must be
    /// distinct per call site invariant-wise, but duplicates are processed
    /// sequentially and stay well-defined.
    #[inline]
    pub fn axpy_indexed<T: Scalar>(mult: T, vals: &[T], cols: &[usize], work: &mut [T]) {
        for (v, &c) in vals.iter().zip(cols) {
            work[c] -= mult * *v;
        }
    }

    /// Returns `acc - Σ vals[i]·work[cols[i]]`, subtracting strictly in
    /// index order (the substitution sweeps' sequential accumulator).
    #[inline]
    pub fn fold_sub_indexed<T: Scalar>(mut acc: T, vals: &[T], cols: &[usize], work: &[T]) -> T {
        for (v, &c) in vals.iter().zip(cols) {
            acc -= *v * work[c];
        }
        acc
    }

    /// `dst[j] -= v * src[j]` over the common length — the k-lane panel
    /// update (lane = right-hand-side column).
    #[inline]
    pub fn panel_axpy<T: Scalar>(v: T, src: &[T], dst: &mut [T]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d -= v * *s;
        }
    }

    /// `dst[j] = dst[j] / diag` for every lane.
    #[inline]
    pub fn panel_div<T: Scalar>(diag: T, dst: &mut [T]) {
        for d in dst {
            *d = *d / diag;
        }
    }

    /// `dst[w] -= a[w] * b[w]` elementwise over the common length — the
    /// w-lane batched-variant update (lane = independent variant, each with
    /// its own multiplier `a[w]` and factor value `b[w]`).
    #[inline]
    pub fn lane_mul_sub<T: Scalar>(a: &[T], b: &[T], dst: &mut [T]) {
        for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
            *d -= *x * *y;
        }
    }

    /// `dst[w] = dst[w] / den[w]` elementwise — the batched
    /// back-substitution divide, one independent diagonal per variant lane.
    #[inline]
    pub fn lane_div<T: Scalar>(den: &[T], dst: &mut [T]) {
        for (d, e) in dst.iter_mut().zip(den) {
            *d = *d / *e;
        }
    }
}

/// AVX2 split-lane implementations. Every function performs exactly the
/// scalar reference arithmetic per element: products via `vmulpd`, the
/// complex cross terms combined with `vaddsubpd` (never FMA), scattered
/// elements addressed through bounds-checked references. Functions are
/// `unsafe` with a single obligation — AVX2 must be available on the
/// running CPU — which the dispatchers discharge by construction
/// ([`KernelBackend::Avx2`] is only selected after runtime detection).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use core::arch::x86_64::{
        __m128d, __m256d, _mm256_add_pd, _mm256_addsub_pd, _mm256_castpd256_pd128, _mm256_div_pd,
        _mm256_extractf128_pd, _mm256_loadu_pd, _mm256_movedup_pd, _mm256_mul_pd,
        _mm256_permute_pd, _mm256_set1_pd, _mm256_set_m128d, _mm256_storeu_pd, _mm256_sub_pd,
        _mm256_xor_pd, _mm_loadu_pd, _mm_storeu_pd, _mm_sub_pd,
    };
    use loopscope_math::Complex64;

    /// One 128-bit load of a single complex element through its
    /// bounds-checked reference (`Complex64` is `repr(C)` `[re, im]`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_c64(z: &Complex64) -> __m128d {
        _mm_loadu_pd((z as *const Complex64).cast::<f64>())
    }

    /// 128-bit store back into a single complex element.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_c64(z: &mut Complex64, v: __m128d) {
        _mm_storeu_pd((z as *mut Complex64).cast::<f64>(), v)
    }

    /// `mult * v` for two complex lanes at once, with exactly the scalar
    /// operation order: `re = m.re·v.re − m.im·v.im`,
    /// `im = m.re·v.im + m.im·v.re` (multiplies then one `vaddsubpd`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_broadcast_c64(mre: __m256d, mim: __m256d, v: __m256d) -> __m256d {
        let t1 = _mm256_mul_pd(mre, v);
        let t2 = _mm256_mul_pd(mim, _mm256_permute_pd::<0b0101>(v));
        _mm256_addsub_pd(t1, t2)
    }

    /// See [`super::scalar::axpy_indexed`]; bit-identical on finite data.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_indexed_c64(
        mult: Complex64,
        vals: &[Complex64],
        cols: &[usize],
        work: &mut [Complex64],
    ) {
        let n = vals.len().min(cols.len());
        let mre = _mm256_set1_pd(mult.re);
        let mim = _mm256_set1_pd(mult.im);
        let mut i = 0;
        while i + 2 <= n {
            // Two contiguous factor values, multiplied in one shot...
            let v = _mm256_loadu_pd(vals[i..i + 2].as_ptr().cast::<f64>());
            let prod = mul_broadcast_c64(mre, mim, v);
            let lo = _mm256_castpd256_pd128(prod);
            let hi = _mm256_extractf128_pd::<1>(prod);
            // ...then scattered sequentially (a duplicated target sees the
            // first store before the second load, exactly like the scalar
            // loop).
            let c0 = cols[i];
            let c1 = cols[i + 1];
            let w0 = load_c64(&work[c0]);
            store_c64(&mut work[c0], _mm_sub_pd(w0, lo));
            let w1 = load_c64(&work[c1]);
            store_c64(&mut work[c1], _mm_sub_pd(w1, hi));
            i += 2;
        }
        if i < n {
            work[cols[i]] -= mult * vals[i];
        }
    }

    /// See [`super::scalar::fold_sub_indexed`]: products are computed two
    /// lanes at a time, the accumulator is updated strictly in order.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fold_sub_indexed_c64(
        mut acc: Complex64,
        vals: &[Complex64],
        cols: &[usize],
        work: &[Complex64],
    ) -> Complex64 {
        let n = vals.len().min(cols.len());
        let mut i = 0;
        while i + 2 <= n {
            let va = _mm256_loadu_pd(vals[i..i + 2].as_ptr().cast::<f64>());
            let b0 = load_c64(&work[cols[i]]);
            let b1 = load_c64(&work[cols[i + 1]]);
            let vb = _mm256_set_m128d(b1, b0);
            // Pairwise complex products a·b: re = a.re·b.re − a.im·b.im,
            // im = a.re·b.im + a.im·b.re — multiplies then one vaddsubpd.
            let t1 = _mm256_mul_pd(_mm256_movedup_pd(va), vb);
            let t2 = _mm256_mul_pd(
                _mm256_permute_pd::<0b1111>(va),
                _mm256_permute_pd::<0b0101>(vb),
            );
            let prod = _mm256_addsub_pd(t1, t2);
            let mut pair = [Complex64::ZERO; 2];
            _mm256_storeu_pd(pair.as_mut_ptr().cast::<f64>(), prod);
            // The accumulator chain stays sequential: no lane reassociation.
            acc -= pair[0];
            acc -= pair[1];
            i += 2;
        }
        if i < n {
            acc -= vals[i] * work[cols[i]];
        }
        acc
    }

    /// See [`super::scalar::panel_axpy`] — the fully contiguous case: two
    /// complex lanes (= two right-hand-side columns) per vector op.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn panel_axpy_c64(v: Complex64, src: &[Complex64], dst: &mut [Complex64]) {
        let n = dst.len().min(src.len());
        let vre = _mm256_set1_pd(v.re);
        let vim = _mm256_set1_pd(v.im);
        let mut j = 0;
        while j + 2 <= n {
            let s = _mm256_loadu_pd(src[j..j + 2].as_ptr().cast::<f64>());
            let prod = mul_broadcast_c64(vre, vim, s);
            let dp = dst[j..j + 2].as_mut_ptr().cast::<f64>();
            let d = _mm256_loadu_pd(dp);
            _mm256_storeu_pd(dp, _mm256_sub_pd(d, prod));
            j += 2;
        }
        if j < n {
            dst[j] -= v * src[j];
        }
    }

    /// See [`super::scalar::panel_div`]: the denominator `|diag|²` is
    /// computed once in scalar (same expression as `Complex64::norm_sqr`),
    /// the per-lane numerators with multiplies and one sign-flipped
    /// `vaddsubpd` (`x − (−y)` is IEEE-identical to `x + y`), then one
    /// `vdivpd`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn panel_div_c64(diag: Complex64, dst: &mut [Complex64]) {
        let n = dst.len();
        let den = _mm256_set1_pd(diag.norm_sqr());
        let dre = _mm256_set1_pd(diag.re);
        let dim = _mm256_set1_pd(diag.im);
        let sign = _mm256_set1_pd(-0.0);
        let mut j = 0;
        while j + 2 <= n {
            let dp = dst[j..j + 2].as_mut_ptr().cast::<f64>();
            let a = _mm256_loadu_pd(dp);
            // num = [a.re·d.re + a.im·d.im, a.im·d.re − a.re·d.im]:
            // addsub with the second operand negated turns its even-lane
            // subtract into the required add and vice versa.
            let t1 = _mm256_mul_pd(a, dre);
            let t2 = _mm256_mul_pd(_mm256_permute_pd::<0b0101>(a), dim);
            let num = _mm256_addsub_pd(t1, _mm256_xor_pd(t2, sign));
            _mm256_storeu_pd(dp, _mm256_div_pd(num, den));
            j += 2;
        }
        if j < n {
            dst[j] /= diag;
        }
    }

    /// See [`super::scalar::lane_mul_sub`]: two complex variant lanes per
    /// vector op, each lane multiplying its own `a[w]·b[w]` pair with
    /// exactly the scalar operation order (multiplies then one `vaddsubpd`,
    /// then the subtract — never FMA).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lane_mul_sub_c64(a: &[Complex64], b: &[Complex64], dst: &mut [Complex64]) {
        let n = dst.len().min(a.len()).min(b.len());
        let mut j = 0;
        while j + 2 <= n {
            let va = _mm256_loadu_pd(a[j..j + 2].as_ptr().cast::<f64>());
            let vb = _mm256_loadu_pd(b[j..j + 2].as_ptr().cast::<f64>());
            // Pairwise complex products a·b: re = a.re·b.re − a.im·b.im,
            // im = a.re·b.im + a.im·b.re.
            let t1 = _mm256_mul_pd(_mm256_movedup_pd(va), vb);
            let t2 = _mm256_mul_pd(
                _mm256_permute_pd::<0b1111>(va),
                _mm256_permute_pd::<0b0101>(vb),
            );
            let prod = _mm256_addsub_pd(t1, t2);
            let dp = dst[j..j + 2].as_mut_ptr().cast::<f64>();
            let d = _mm256_loadu_pd(dp);
            _mm256_storeu_pd(dp, _mm256_sub_pd(d, prod));
            j += 2;
        }
        if j < n {
            dst[j] -= a[j] * b[j];
        }
    }

    /// See [`super::scalar::lane_div`]: each variant lane divides by its own
    /// diagonal. The per-lane `|den|²` denominators are built with one
    /// multiply and one in-register add in the scalar `re·re + im·im` order
    /// (the same expression as `Complex64::norm_sqr`), the numerators with
    /// multiplies and one sign-flipped `vaddsubpd` exactly like
    /// [`panel_div_c64`], then one `vdivpd`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lane_div_c64(den: &[Complex64], dst: &mut [Complex64]) {
        let n = dst.len().min(den.len());
        let sign = _mm256_set1_pd(-0.0);
        let mut j = 0;
        while j + 2 <= n {
            let vd = _mm256_loadu_pd(den[j..j + 2].as_ptr().cast::<f64>());
            // [re², im²] per lane, then each half-lane summed with its
            // swapped neighbor: both slots hold re² + im² (IEEE addition is
            // commutative bitwise, so slot order does not matter).
            let sq = _mm256_mul_pd(vd, vd);
            let dsum = _mm256_add_pd(sq, _mm256_permute_pd::<0b0101>(sq));
            let dp = dst[j..j + 2].as_mut_ptr().cast::<f64>();
            let a = _mm256_loadu_pd(dp);
            // num = [a.re·d.re + a.im·d.im, a.im·d.re − a.re·d.im]: addsub
            // with the second operand negated turns its even-lane subtract
            // into the required add and vice versa.
            let t1 = _mm256_mul_pd(a, _mm256_movedup_pd(vd));
            let t2 = _mm256_mul_pd(
                _mm256_permute_pd::<0b0101>(a),
                _mm256_permute_pd::<0b1111>(vd),
            );
            let num = _mm256_addsub_pd(t1, _mm256_xor_pd(t2, sign));
            _mm256_storeu_pd(dp, _mm256_div_pd(num, dsum));
            j += 2;
        }
        if j < n {
            dst[j] /= den[j];
        }
    }

    /// Real-lane form of [`axpy_indexed_c64`]: four products per vector op,
    /// scattered sequentially.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_indexed_f64(
        mult: f64,
        vals: &[f64],
        cols: &[usize],
        work: &mut [f64],
    ) {
        let n = vals.len().min(cols.len());
        let m = _mm256_set1_pd(mult);
        let mut i = 0;
        while i + 4 <= n {
            let prod = _mm256_mul_pd(m, _mm256_loadu_pd(vals[i..].as_ptr()));
            let mut p = [0.0f64; 4];
            _mm256_storeu_pd(p.as_mut_ptr(), prod);
            for (k, &pk) in p.iter().enumerate() {
                work[cols[i + k]] -= pk;
            }
            i += 4;
        }
        while i < n {
            work[cols[i]] -= mult * vals[i];
            i += 1;
        }
    }

    /// Real-lane form of [`fold_sub_indexed_c64`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fold_sub_indexed_f64(
        mut acc: f64,
        vals: &[f64],
        cols: &[usize],
        work: &[f64],
    ) -> f64 {
        let n = vals.len().min(cols.len());
        let mut i = 0;
        while i + 4 <= n {
            let mut b = [0.0f64; 4];
            for (k, bk) in b.iter_mut().enumerate() {
                *bk = work[cols[i + k]];
            }
            let prod = _mm256_mul_pd(
                _mm256_loadu_pd(vals[i..].as_ptr()),
                _mm256_loadu_pd(b.as_ptr()),
            );
            let mut p = [0.0f64; 4];
            _mm256_storeu_pd(p.as_mut_ptr(), prod);
            // Sequential accumulation, same order as the scalar loop.
            for &pk in &p {
                acc -= pk;
            }
            i += 4;
        }
        while i < n {
            acc -= vals[i] * work[cols[i]];
            i += 1;
        }
        acc
    }

    /// Real-lane form of [`panel_axpy_c64`]: four lanes per vector op.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn panel_axpy_f64(v: f64, src: &[f64], dst: &mut [f64]) {
        let n = dst.len().min(src.len());
        let vv = _mm256_set1_pd(v);
        let mut j = 0;
        while j + 4 <= n {
            let prod = _mm256_mul_pd(vv, _mm256_loadu_pd(src[j..].as_ptr()));
            let dp = dst[j..].as_mut_ptr();
            _mm256_storeu_pd(dp, _mm256_sub_pd(_mm256_loadu_pd(dp), prod));
            j += 4;
        }
        while j < n {
            dst[j] -= v * src[j];
            j += 1;
        }
    }

    /// Real-lane form of [`panel_div_c64`]: one `vdivpd` per four lanes.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn panel_div_f64(diag: f64, dst: &mut [f64]) {
        let n = dst.len();
        let dv = _mm256_set1_pd(diag);
        let mut j = 0;
        while j + 4 <= n {
            let dp = dst[j..].as_mut_ptr();
            _mm256_storeu_pd(dp, _mm256_div_pd(_mm256_loadu_pd(dp), dv));
            j += 4;
        }
        while j < n {
            dst[j] /= diag;
            j += 1;
        }
    }

    /// Real-lane form of [`lane_mul_sub_c64`]: four variant lanes per op.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lane_mul_sub_f64(a: &[f64], b: &[f64], dst: &mut [f64]) {
        let n = dst.len().min(a.len()).min(b.len());
        let mut j = 0;
        while j + 4 <= n {
            let prod = _mm256_mul_pd(
                _mm256_loadu_pd(a[j..].as_ptr()),
                _mm256_loadu_pd(b[j..].as_ptr()),
            );
            let dp = dst[j..].as_mut_ptr();
            _mm256_storeu_pd(dp, _mm256_sub_pd(_mm256_loadu_pd(dp), prod));
            j += 4;
        }
        while j < n {
            dst[j] -= a[j] * b[j];
            j += 1;
        }
    }

    /// Real-lane form of [`lane_div_c64`]: one `vdivpd` per four lanes.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lane_div_f64(den: &[f64], dst: &mut [f64]) {
        let n = dst.len().min(den.len());
        let mut j = 0;
        while j + 4 <= n {
            let dp = dst[j..].as_mut_ptr();
            _mm256_storeu_pd(
                dp,
                _mm256_div_pd(_mm256_loadu_pd(dp), _mm256_loadu_pd(den[j..].as_ptr())),
            );
            j += 4;
        }
        while j < n {
            dst[j] /= den[j];
            j += 1;
        }
    }
}

/// Expands to one safe per-type dispatcher per primitive: the scalar arm
/// inlines the reference loop, the AVX2 arm calls into the
/// `target_feature` function. The AVX2 arm re-checks [`simd_available`]
/// (a cached feature probe) before entering the `unsafe` call: `Avx2` is a
/// freely constructible public value, so soundness must hold even for a
/// caller that never went through [`selected_backend`] — on hardware
/// without AVX2 (and on non-x86_64 builds) the arm silently degrades to
/// the scalar reference, which is bit-identical anyway.
macro_rules! dispatchers {
    ($ty:ty, $lanes:expr, $axpy:ident, $fold:ident, $paxpy:ident, $pdiv:ident,
     $axpy_simd:ident, $fold_simd:ident, $paxpy_simd:ident, $pdiv_simd:ident) => {
        /// `work[cols[i]] -= mult * vals[i]` on the chosen backend
        /// (see [`scalar::axpy_indexed`] for the exact semantics). Slices
        /// shorter than one vector width take the inlined scalar loop even
        /// on the SIMD backend — the results are identical by the bitwise
        /// contract, and skipping the `target_feature` call keeps short
        /// fill rows (e.g. a tridiagonal ladder's single-entry updates)
        /// free of dispatch overhead.
        #[inline]
        pub fn $axpy(
            backend: KernelBackend,
            mult: $ty,
            vals: &[$ty],
            cols: &[usize],
            work: &mut [$ty],
        ) {
            if vals.len() < $lanes {
                return scalar::axpy_indexed(mult, vals, cols, work);
            }
            match backend {
                KernelBackend::Scalar => scalar::axpy_indexed(mult, vals, cols, work),
                KernelBackend::Avx2 => {
                    #[cfg(target_arch = "x86_64")]
                    if simd_available() {
                        // SAFETY: AVX2 presence was just verified; scattered
                        // accesses are bounds-checked inside the kernel.
                        #[allow(unsafe_code)]
                        unsafe {
                            avx2::$axpy_simd(mult, vals, cols, work)
                        }
                    } else {
                        scalar::axpy_indexed(mult, vals, cols, work)
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    scalar::axpy_indexed(mult, vals, cols, work)
                }
            }
        }

        /// `acc - Σ vals[i]·work[cols[i]]`, accumulated strictly in order,
        /// on the chosen backend (see [`scalar::fold_sub_indexed`]).
        #[inline]
        pub fn $fold(
            backend: KernelBackend,
            acc: $ty,
            vals: &[$ty],
            cols: &[usize],
            work: &[$ty],
        ) -> $ty {
            if vals.len() < $lanes {
                return scalar::fold_sub_indexed(acc, vals, cols, work);
            }
            match backend {
                KernelBackend::Scalar => scalar::fold_sub_indexed(acc, vals, cols, work),
                KernelBackend::Avx2 => {
                    #[cfg(target_arch = "x86_64")]
                    if simd_available() {
                        // SAFETY: AVX2 presence was just verified.
                        #[allow(unsafe_code)]
                        unsafe {
                            return avx2::$fold_simd(acc, vals, cols, work);
                        }
                    }
                    scalar::fold_sub_indexed(acc, vals, cols, work)
                }
            }
        }

        /// `dst[j] -= v * src[j]` over the common length on the chosen
        /// backend (see [`scalar::panel_axpy`]).
        #[inline]
        pub fn $paxpy(backend: KernelBackend, v: $ty, src: &[$ty], dst: &mut [$ty]) {
            if dst.len() < $lanes {
                return scalar::panel_axpy(v, src, dst);
            }
            match backend {
                KernelBackend::Scalar => scalar::panel_axpy(v, src, dst),
                KernelBackend::Avx2 => {
                    #[cfg(target_arch = "x86_64")]
                    if simd_available() {
                        // SAFETY: AVX2 presence was just verified.
                        #[allow(unsafe_code)]
                        unsafe {
                            avx2::$paxpy_simd(v, src, dst)
                        }
                    } else {
                        scalar::panel_axpy(v, src, dst)
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    scalar::panel_axpy(v, src, dst)
                }
            }
        }

        /// `dst[j] = dst[j] / diag` for every lane on the chosen backend
        /// (see [`scalar::panel_div`]).
        #[inline]
        pub fn $pdiv(backend: KernelBackend, diag: $ty, dst: &mut [$ty]) {
            if dst.len() < $lanes {
                return scalar::panel_div(diag, dst);
            }
            match backend {
                KernelBackend::Scalar => scalar::panel_div(diag, dst),
                KernelBackend::Avx2 => {
                    #[cfg(target_arch = "x86_64")]
                    if simd_available() {
                        // SAFETY: AVX2 presence was just verified.
                        #[allow(unsafe_code)]
                        unsafe {
                            avx2::$pdiv_simd(diag, dst)
                        }
                    } else {
                        scalar::panel_div(diag, dst)
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    scalar::panel_div(diag, dst)
                }
            }
        }
    };
}

dispatchers!(
    Complex64,
    2,
    axpy_indexed_c64,
    fold_sub_indexed_c64,
    panel_axpy_c64,
    panel_div_c64,
    axpy_indexed_c64,
    fold_sub_indexed_c64,
    panel_axpy_c64,
    panel_div_c64
);

dispatchers!(
    f64,
    4,
    axpy_indexed_f64,
    fold_sub_indexed_f64,
    panel_axpy_f64,
    panel_div_f64,
    axpy_indexed_f64,
    fold_sub_indexed_f64,
    panel_axpy_f64,
    panel_div_f64
);

/// Per-type dispatchers for the batched variant-lane primitives, with the
/// same structure and soundness discipline as [`dispatchers`]: short slices
/// take the inlined scalar loop, and the AVX2 arm re-checks
/// [`simd_available`] before the `unsafe` call.
macro_rules! lane_dispatchers {
    ($ty:ty, $lanes:expr, $mulsub:ident, $div:ident, $mulsub_simd:ident, $div_simd:ident) => {
        /// `dst[w] -= a[w] * b[w]` elementwise on the chosen backend (see
        /// [`scalar::lane_mul_sub`]) — the batched-variant lane update,
        /// where every lane is an independent variant with its own
        /// multiplier/factor pair.
        #[inline]
        pub fn $mulsub(backend: KernelBackend, a: &[$ty], b: &[$ty], dst: &mut [$ty]) {
            if dst.len() < $lanes {
                return scalar::lane_mul_sub(a, b, dst);
            }
            match backend {
                KernelBackend::Scalar => scalar::lane_mul_sub(a, b, dst),
                KernelBackend::Avx2 => {
                    #[cfg(target_arch = "x86_64")]
                    if simd_available() {
                        // SAFETY: AVX2 presence was just verified.
                        #[allow(unsafe_code)]
                        unsafe {
                            avx2::$mulsub_simd(a, b, dst)
                        }
                    } else {
                        scalar::lane_mul_sub(a, b, dst)
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    scalar::lane_mul_sub(a, b, dst)
                }
            }
        }

        /// `dst[w] = dst[w] / den[w]` elementwise on the chosen backend
        /// (see [`scalar::lane_div`]) — one independent diagonal per
        /// variant lane.
        #[inline]
        pub fn $div(backend: KernelBackend, den: &[$ty], dst: &mut [$ty]) {
            if dst.len() < $lanes {
                return scalar::lane_div(den, dst);
            }
            match backend {
                KernelBackend::Scalar => scalar::lane_div(den, dst),
                KernelBackend::Avx2 => {
                    #[cfg(target_arch = "x86_64")]
                    if simd_available() {
                        // SAFETY: AVX2 presence was just verified.
                        #[allow(unsafe_code)]
                        unsafe {
                            avx2::$div_simd(den, dst)
                        }
                    } else {
                        scalar::lane_div(den, dst)
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    scalar::lane_div(den, dst)
                }
            }
        }
    };
}

lane_dispatchers!(
    Complex64,
    2,
    lane_mul_sub_c64,
    lane_div_c64,
    lane_mul_sub_c64,
    lane_div_c64
);

lane_dispatchers!(
    f64,
    4,
    lane_mul_sub_f64,
    lane_div_f64,
    lane_mul_sub_f64,
    lane_div_f64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_rule_honors_explicit_scalar() {
        assert_eq!(backend_for(Some("scalar"), true), KernelBackend::Scalar);
        assert_eq!(backend_for(Some(" SCALAR "), true), KernelBackend::Scalar);
        assert_eq!(backend_for(Some("scalar"), false), KernelBackend::Scalar);
    }

    #[test]
    fn backend_rule_auto_detects() {
        assert_eq!(backend_for(None, true), KernelBackend::Avx2);
        assert_eq!(backend_for(None, false), KernelBackend::Scalar);
        assert_eq!(backend_for(Some("avx2"), true), KernelBackend::Avx2);
        // An AVX2 request on hardware without it degrades, never crashes.
        assert_eq!(backend_for(Some("avx2"), false), KernelBackend::Scalar);
        // Unknown values fall back to auto-detection.
        assert_eq!(backend_for(Some("banana"), true), KernelBackend::Avx2);
    }

    #[test]
    fn selection_is_deterministic_per_process() {
        let first = selected_backend();
        for _ in 0..100 {
            assert_eq!(selected_backend(), first);
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [KernelBackend::Scalar, KernelBackend::Avx2] {
            assert_eq!(backend_for(Some(b.name()), true).name(), {
                if b.is_simd() {
                    "avx2"
                } else {
                    "scalar"
                }
            });
            assert_eq!(b.to_string(), b.name());
        }
    }

    #[test]
    fn scalar_reference_semantics() {
        let vals = [2.0f64, -3.0, 0.5];
        let cols = [2usize, 0, 1];
        let mut work = [10.0f64, 20.0, 30.0];
        scalar::axpy_indexed(2.0, &vals, &cols, &mut work);
        assert_eq!(work, [16.0, 19.0, 26.0]);
        let acc = scalar::fold_sub_indexed(1.0, &vals, &cols, &work);
        assert_eq!(acc, 1.0 - 2.0 * 26.0 + 3.0 * 16.0 - 0.5 * 19.0);
        let mut dst = [8.0f64, 6.0];
        scalar::panel_axpy(0.5, &[2.0, 4.0], &mut dst);
        assert_eq!(dst, [7.0, 4.0]);
        scalar::panel_div(2.0, &mut dst);
        assert_eq!(dst, [3.5, 2.0]);
    }

    #[test]
    fn lane_scalar_reference_semantics() {
        let a = [2.0f64, -3.0, 0.5, 4.0];
        let b = [1.5f64, 2.0, -8.0, 0.25];
        let mut dst = [10.0f64, 10.0, 10.0, 10.0];
        scalar::lane_mul_sub(&a, &b, &mut dst);
        assert_eq!(dst, [7.0, 16.0, 14.0, 9.0]);
        scalar::lane_div(&[2.0, 4.0, -7.0, 3.0], &mut dst);
        assert_eq!(dst, [3.5, 4.0, -2.0, 3.0]);
    }

    /// The batched lane primitives must match the scalar reference
    /// bit-for-bit on the dispatched backend, on awkwardly scaled data and
    /// at lengths exercising both the vector body and the scalar tail.
    #[test]
    fn lane_dispatchers_bitwise_match_scalar() {
        let backend = selected_backend();
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((seed >> 11) as f64) / ((1u64 << 53) as f64);
            (u - 0.5) * 2.0e3 * (10.0f64).powi(((seed >> 7) % 13) as i32 - 6)
        };
        for n in [1usize, 2, 3, 4, 5, 7, 8, 11] {
            let a: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
            let b: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
            let base: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
            let mut want = base.clone();
            scalar::lane_mul_sub(&a, &b, &mut want);
            let mut got = base.clone();
            lane_mul_sub_c64(backend, &a, &b, &mut got);
            for (w, g) in want.iter().zip(&got) {
                assert!(w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits());
            }
            let mut want = base.clone();
            scalar::lane_div(&a, &mut want);
            let mut got = base.clone();
            lane_div_c64(backend, &a, &mut got);
            for (w, g) in want.iter().zip(&got) {
                assert!(w.re.to_bits() == g.re.to_bits() && w.im.to_bits() == g.im.to_bits());
            }

            let ra: Vec<f64> = (0..n).map(|_| next()).collect();
            let rb: Vec<f64> = (0..n).map(|_| next()).collect();
            let rbase: Vec<f64> = (0..n).map(|_| next()).collect();
            let mut want = rbase.clone();
            scalar::lane_mul_sub(&ra, &rb, &mut want);
            let mut got = rbase.clone();
            lane_mul_sub_f64(backend, &ra, &rb, &mut got);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits());
            }
            let mut want = rbase.clone();
            scalar::lane_div(&ra, &mut want);
            let mut got = rbase;
            lane_div_f64(backend, &ra, &mut got);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits());
            }
        }
    }
}
