//! Sparse LU factorization with a symbolic/numeric split.
//!
//! The solver is organised around the workload of the stability analyses: the
//! same MNA sparsity pattern is factored hundreds of times per sweep (once
//! per frequency point, Newton iteration or timestep) with only the numeric
//! values changing. Two paths serve that workload:
//!
//! * [`SparseLu::factor`] — a **fresh factorization with partial pivoting**
//!   (largest modulus in the pivot column among the remaining rows). Rows are
//!   kept as flat sorted `(col, value)` vectors and elimination updates are
//!   two-pointer merges, so there is no tree/map traversal in the hot loop.
//!   Pivoting makes this path robust for MNA matrices, which carry zero
//!   diagonals on voltage-source branch rows.
//! * [`SparseLu::refactor`] — a **numeric-only refactorization** that reuses
//!   a [`SymbolicLu`] (pivot order + fill pattern) captured by
//!   [`SparseLu::factor_with_symbolic`]. It runs a left-looking pass over the
//!   precomputed pattern with a scatter/gather dense work row: no pivot
//!   search, no fill discovery, no allocation proportional to elimination
//!   steps. When a pivot degrades numerically (or the matrix pattern no
//!   longer matches) it transparently falls back to a fresh pivoting
//!   factorization; [`SparseLu::refactored`] reports which path ran.
//!
//! Structural zeros are preserved during elimination (entries that cancel
//! exactly are kept), so the recorded fill pattern is value-independent and
//! remains valid for any matrix with the same structure.
//!
//! Singularity is detected **per pivot column, relative to that column's
//! largest entry modulus in the input matrix** rather than against an
//! absolute epsilon. Badly scaled but well-conditioned systems (e.g.
//! everything in nano-units) factor cleanly, genuinely rank-deficient
//! columns are still rejected, and — unlike a matrix-wide norm test — a
//! tiny-but-healthy column (a GMIN shunt next to a huge admittance) is not
//! misclassified just because unrelated entries are large.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::fmt;
use std::sync::Arc;

/// Error produced by factorization or solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (no usable pivot) at the given elimination step.
    Singular(usize),
    /// The matrix is not square.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    RhsLength {
        /// Matrix dimension.
        expected: usize,
        /// Supplied right-hand-side length.
        got: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular(k) => write!(f, "matrix is singular at elimination step {k}"),
            SolveError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            SolveError::RhsLength { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A pivot is declared numerically singular when its modulus falls below
/// this fraction of **its column's** largest entry modulus in the input
/// matrix. Column-relative (rather than absolute, or matrix-norm-relative)
/// so uniformly scaled systems behave identically at any magnitude and a
/// small-but-healthy column is not poisoned by large entries elsewhere.
const SINGULARITY_RELATIVE: f64 = 1.0e-14;

/// During a refactorization the precomputed pivot order is trusted only while
/// each pivot stays within this factor of the largest modulus in its U row;
/// below it the factorization falls back to fresh partial pivoting.
const REFACTOR_PIVOT_RELATIVE: f64 = 1.0e-8;

/// The pivot order and fill pattern of an LU factorization, independent of
/// the numeric values.
///
/// Produced by [`SparseLu::factor_with_symbolic`]; consumed by
/// [`SparseLu::refactor`] to factor further matrices **with the same sparsity
/// pattern** without re-running pivot search or fill-in discovery. The
/// pattern is value-independent because the analysis keeps structural zeros,
/// so it stays valid for every matrix assembled over the same structure.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    /// Shared with every [`SparseLu`] produced from it, so capturing and
    /// reusing a pattern never copies the index arrays.
    pattern: Arc<LuPattern>,
}

/// The immutable pivot-order + fill-pattern data shared (via `Arc`) between
/// a [`SymbolicLu`] and the factorizations built over it.
#[derive(Debug)]
struct LuPattern {
    n: usize,
    /// `perm[k]` is the original row index used as pivot row at step `k`.
    perm: Vec<usize>,
    /// CSR-style pattern of the strictly-lower factor, indexed by elimination
    /// step: `l_cols[l_ptr[i]..l_ptr[i+1]]` are the (ascending) pivot columns
    /// eliminated from row `perm[i]`.
    l_ptr: Vec<usize>,
    l_cols: Vec<usize>,
    /// CSR-style pattern of the upper factor, indexed by elimination step;
    /// the first column of each row is the diagonal.
    u_ptr: Vec<usize>,
    u_cols: Vec<usize>,
}

impl SymbolicLu {
    /// Matrix dimension this pattern was computed for.
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// Total number of pattern entries in L and U (fill-in included).
    pub fn fill_nnz(&self) -> usize {
        self.pattern.l_cols.len() + self.pattern.u_cols.len()
    }

    /// The pivot order: element `k` is the original row eliminated at step
    /// `k`.
    pub fn pivot_order(&self) -> &[usize] {
        &self.pattern.perm
    }
}

/// Largest modulus per column of `matrix` — the per-column reference scale
/// for the relative singularity test.
fn column_max_moduli<T: Scalar>(matrix: &CsrMatrix<T>) -> Vec<f64> {
    let mut col_max = vec![0.0f64; matrix.cols()];
    for (_, c, v) in matrix.iter() {
        let m = v.modulus();
        if m > col_max[c] {
            col_max[c] = m;
        }
    }
    col_max
}

/// Why a numeric-only refactorization could not be completed; drives the
/// fallback in [`SparseLu::refactor`].
enum RefactorFailure {
    /// A pivot fell below the numeric quality threshold at the given step;
    /// a fresh pivoting factorization may still succeed.
    Degraded,
    /// The matrix contains an entry outside the recorded fill pattern.
    PatternMismatch,
    /// A hard error that no fallback can fix.
    Hard(SolveError),
}

/// An LU factorization `P·A = L·U` of a sparse square matrix.
///
/// Factors are stored flat (CSR-style index/value arrays ordered by
/// elimination step), so [`solve`](SparseLu::solve) is two cache-friendly
/// sweeps. A factorization can be reused for any number of right-hand sides;
/// with a [`SymbolicLu`] the *pattern* can additionally be reused across
/// matrices via [`refactor`](SparseLu::refactor).
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar> {
    /// Pivot order and L/U index pattern, shared (not copied) with the
    /// [`SymbolicLu`] this factorization came from or can hand out.
    pattern: Arc<LuPattern>,
    l_vals: Vec<T>,
    u_vals: Vec<T>,
    /// Whether this factorization was produced by pattern-reusing
    /// refactorization (`true`) or fresh pivoting (`false`).
    refactored: bool,
}

/// Computes `merged = a − factor·p` for two sorted sparse rows, keeping the
/// full union pattern (entries that cancel to exact zero are preserved so the
/// fill pattern stays value-independent).
fn merge_sub<T: Scalar>(a: &[(usize, T)], p: &[(usize, T)], factor: T, out: &mut Vec<(usize, T)>) {
    out.clear();
    out.reserve(a.len() + p.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < p.len() {
        let (ac, av) = a[i];
        let (pc, pv) = p[j];
        if ac == pc {
            out.push((ac, av - factor * pv));
            i += 1;
            j += 1;
        } else if ac < pc {
            out.push((ac, av));
            i += 1;
        } else {
            out.push((pc, -(factor * pv)));
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    for &(pc, pv) in &p[j..] {
        out.push((pc, -(factor * pv)));
    }
}

impl<T: Scalar> SparseLu<T> {
    /// Factors a square sparse matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for rectangular input and
    /// [`SolveError::Singular`] when no acceptable pivot exists at some step.
    pub fn factor(matrix: &CsrMatrix<T>) -> Result<Self, SolveError> {
        let n = matrix.rows();
        if matrix.cols() != n {
            return Err(SolveError::NotSquare {
                rows: n,
                cols: matrix.cols(),
            });
        }
        // Per-column reference scales for the relative singularity test.
        let col_max = column_max_moduli(matrix);

        // Working rows as sorted (col, value) vectors. After step k every
        // still-active row starts at a column > k, so "row contains the pivot
        // column" is a check of its first entry only.
        let mut rows: Vec<Vec<(usize, T)>> =
            (0..n).map(|r| matrix.row_entries(r).collect()).collect();
        let mut active: Vec<usize> = (0..n).collect();
        // L entries per ORIGINAL row index, pushed in ascending step order.
        let mut l_rows: Vec<Vec<(usize, T)>> = vec![Vec::new(); n];
        let mut u_rows: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);
        let mut perm = Vec::with_capacity(n);
        let mut scratch: Vec<(usize, T)> = Vec::new();

        // The loop is over elimination steps, not col_max; indexing is
        // clearer than iterating the threshold table.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            // Partial pivoting: among active rows holding column k, take the
            // one with the largest modulus there.
            let mut best: Option<(usize, f64)> = None;
            for (ai, &r) in active.iter().enumerate() {
                if let Some(&(c, v)) = rows[r].first() {
                    if c == k {
                        let m = v.modulus();
                        if best.is_none_or(|(_, bm)| m > bm) {
                            best = Some((ai, m));
                        }
                    }
                }
            }
            let (active_idx, pivot_mod) = best.ok_or(SolveError::Singular(k))?;
            if pivot_mod <= col_max[k] * SINGULARITY_RELATIVE || pivot_mod == 0.0 {
                return Err(SolveError::Singular(k));
            }
            let pivot_row = active.swap_remove(active_idx);
            let pivot = std::mem::take(&mut rows[pivot_row]);
            let pivot_val = pivot[0].1;

            // Eliminate column k from the remaining active rows.
            for &r in &active {
                let Some(&(c, a_rk)) = rows[r].first() else {
                    continue;
                };
                if c != k {
                    continue;
                }
                let factor = a_rk / pivot_val;
                merge_sub(&rows[r][1..], &pivot[1..], factor, &mut scratch);
                std::mem::swap(&mut rows[r], &mut scratch);
                // Record even exact-zero multipliers: the L pattern must not
                // depend on the numeric values.
                l_rows[r].push((k, factor));
            }

            perm.push(pivot_row);
            u_rows.push(pivot);
        }

        // Flatten into CSR-style arrays ordered by elimination step.
        let mut l_ptr = Vec::with_capacity(n + 1);
        let mut l_cols = Vec::new();
        let mut l_vals = Vec::new();
        let mut u_ptr = Vec::with_capacity(n + 1);
        let mut u_cols = Vec::new();
        let mut u_vals = Vec::new();
        l_ptr.push(0);
        u_ptr.push(0);
        for (i, u_row) in u_rows.into_iter().enumerate() {
            for (c, v) in std::mem::take(&mut l_rows[perm[i]]) {
                l_cols.push(c);
                l_vals.push(v);
            }
            l_ptr.push(l_cols.len());
            debug_assert_eq!(u_row[0].0, i, "pivot row must start at its diagonal");
            for (c, v) in u_row {
                u_cols.push(c);
                u_vals.push(v);
            }
            u_ptr.push(u_cols.len());
        }

        Ok(Self {
            pattern: Arc::new(LuPattern {
                n,
                perm,
                l_ptr,
                l_cols,
                u_ptr,
                u_cols,
            }),
            l_vals,
            u_vals,
            refactored: false,
        })
    }

    /// Factors a matrix and additionally captures its pivot order and fill
    /// pattern for later [`refactor`](SparseLu::refactor) calls.
    ///
    /// # Errors
    ///
    /// Same conditions as [`factor`](SparseLu::factor).
    pub fn factor_with_symbolic(matrix: &CsrMatrix<T>) -> Result<(Self, SymbolicLu), SolveError> {
        let lu = Self::factor(matrix)?;
        let symbolic = lu.extract_symbolic();
        Ok((lu, symbolic))
    }

    /// Captures this factorization's pivot order and fill pattern — the same
    /// data [`factor_with_symbolic`](SparseLu::factor_with_symbolic) returns.
    ///
    /// Useful to adopt a fresh pattern after
    /// [`refactor`](SparseLu::refactor) fell back to pivoting: the fallback
    /// already computed a healthy pivot order, so callers can reuse it
    /// without paying for another factorization. Cheap: the pattern is
    /// reference-counted, not copied.
    pub fn extract_symbolic(&self) -> SymbolicLu {
        SymbolicLu {
            pattern: Arc::clone(&self.pattern),
        }
    }

    /// Factors a matrix **reusing the pivot order and fill pattern** of a
    /// previous factorization of a matrix with the same structure.
    ///
    /// This is the hot path of frequency sweeps, Newton loops and transient
    /// stepping: a numeric-only left-looking pass with no pivot search and no
    /// fill discovery. When a pivot degrades numerically, or the matrix does
    /// not match the recorded pattern, the call transparently falls back to a
    /// fresh pivoting factorization ([`refactored`](SparseLu::refactored)
    /// returns `false` in that case, signalling that the symbolic analysis
    /// should be refreshed).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for rectangular input or a dimension
    /// mismatch with `symbolic`, and [`SolveError::Singular`] when even the
    /// fallback pivoting factorization finds no acceptable pivot.
    pub fn refactor(symbolic: &SymbolicLu, matrix: &CsrMatrix<T>) -> Result<Self, SolveError> {
        match Self::try_refactor(symbolic, matrix) {
            Ok(lu) => Ok(lu),
            Err(RefactorFailure::Degraded | RefactorFailure::PatternMismatch) => {
                Self::factor(matrix)
            }
            Err(RefactorFailure::Hard(e)) => Err(e),
        }
    }

    /// The numeric-only refactorization pass; failures that a fresh pivoting
    /// factorization might fix are reported as soft [`RefactorFailure`]s.
    fn try_refactor(symbolic: &SymbolicLu, matrix: &CsrMatrix<T>) -> Result<Self, RefactorFailure> {
        let pattern = &*symbolic.pattern;
        let n = pattern.n;
        if matrix.rows() != n || matrix.cols() != n {
            return Err(RefactorFailure::Hard(SolveError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            }));
        }
        // Per-column reference scales of the *new* values for the relative
        // singularity test (same rule as the fresh factorization).
        let col_max = column_max_moduli(matrix);

        // Dense scatter/gather work row. `marked[c] == i` means column c is
        // part of row i's fill pattern and its work slot is initialised.
        let mut work = vec![T::ZERO; n];
        let mut marked = vec![usize::MAX; n];
        let mut l_vals = Vec::with_capacity(pattern.l_cols.len());
        let mut u_vals: Vec<T> = Vec::with_capacity(pattern.u_cols.len());

        // Loop over elimination steps; col_max is only consulted for the
        // pivot check, so enumerate() would obscure the structure.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let l_range = pattern.l_ptr[i]..pattern.l_ptr[i + 1];
            let u_range = pattern.u_ptr[i]..pattern.u_ptr[i + 1];
            for &c in &pattern.l_cols[l_range.clone()] {
                work[c] = T::ZERO;
                marked[c] = i;
            }
            for &c in &pattern.u_cols[u_range.clone()] {
                work[c] = T::ZERO;
                marked[c] = i;
            }
            // Scatter the input row; anything outside the pattern means the
            // structure changed and the symbolic analysis is stale.
            for (c, v) in matrix.row_entries(pattern.perm[i]) {
                if marked[c] != i {
                    return Err(RefactorFailure::PatternMismatch);
                }
                work[c] = v;
            }
            // Left-looking elimination against the already-finished U rows.
            for t in l_range {
                let k = pattern.l_cols[t];
                let mult = work[k] / u_vals[pattern.u_ptr[k]];
                l_vals.push(mult);
                if !mult.is_zero() {
                    for s in (pattern.u_ptr[k] + 1)..pattern.u_ptr[k + 1] {
                        work[pattern.u_cols[s]] -= mult * u_vals[s];
                    }
                }
            }
            // Gather the U row and check pivot quality. The pivot of step i
            // sits in column i, so its singularity scale is col_max[i].
            let diag_at = u_vals.len();
            let mut row_max = 0.0f64;
            for s in u_range {
                let v = work[pattern.u_cols[s]];
                row_max = row_max.max(v.modulus());
                u_vals.push(v);
            }
            let pivot_mod = u_vals[diag_at].modulus();
            if pivot_mod == 0.0
                || pivot_mod <= col_max[i] * SINGULARITY_RELATIVE
                || pivot_mod < REFACTOR_PIVOT_RELATIVE * row_max
            {
                return Err(RefactorFailure::Degraded);
            }
        }

        Ok(Self {
            pattern: Arc::clone(&symbolic.pattern),
            l_vals,
            u_vals,
            refactored: true,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// `true` when this factorization reused a precomputed pattern; `false`
    /// when it ran (or fell back to) fresh partial pivoting.
    pub fn refactored(&self) -> bool {
        self.refactored
    }

    /// Total number of stored entries in the L and U factors (a fill-in
    /// diagnostic).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::RhsLength`] when `b.len()` does not match the
    /// matrix dimension.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, SolveError> {
        let p = &*self.pattern;
        if b.len() != p.n {
            return Err(SolveError::RhsLength {
                expected: p.n,
                got: b.len(),
            });
        }
        // Forward substitution on the unit-lower factor, rows in elimination
        // order: y[i] = b[perm[i]] − Σ L[i][k]·y[k].
        let mut y = vec![T::ZERO; p.n];
        for i in 0..p.n {
            let mut acc = b[p.perm[i]];
            for t in p.l_ptr[i]..p.l_ptr[i + 1] {
                acc -= self.l_vals[t] * y[p.l_cols[t]];
            }
            y[i] = acc;
        }
        // Back substitution on U (diagonal first in each row).
        let mut x = vec![T::ZERO; p.n];
        for i in (0..p.n).rev() {
            let start = p.u_ptr[i];
            let mut acc = y[i];
            for t in (start + 1)..p.u_ptr[i + 1] {
                acc -= self.u_vals[t] * x[p.u_cols[t]];
            }
            x[i] = acc / self.u_vals[start];
        }
        Ok(x)
    }
}

/// Convenience helper: factor `matrix` and solve for a single right-hand side.
///
/// # Errors
///
/// Propagates any [`SolveError`] from factorization or solve.
pub fn solve_once<T: Scalar>(matrix: &CsrMatrix<T>, b: &[T]) -> Result<Vec<T>, SolveError> {
    SparseLu::factor(matrix)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;
    use loopscope_math::Complex64;

    fn csr_from_dense(d: &[&[f64]]) -> CsrMatrix<f64> {
        let rows = d.len();
        let cols = d[0].len();
        let mut t = TripletMatrix::new(rows, cols);
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(i, j, v);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_small_dense_system() {
        let a = csr_from_dense(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_zero_diagonal_via_pivoting() {
        // Typical MNA pattern: a voltage-source branch row with zero diagonal.
        let a = csr_from_dense(&[&[0.0, 1.0], &[1.0, 1e-3]]);
        let x = solve_once(&a, &[5.0, 2.0]).unwrap();
        // x[1] = 5 (from row 0), x[0] = 2 − 1e-3·5.
        assert!((x[1] - 5.0).abs() < 1e-12);
        assert!((x[0] - (2.0 - 5e-3)).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = csr_from_dense(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_once(&a, &[1.0, 2.0]),
            Err(SolveError::Singular(_))
        ));
    }

    #[test]
    fn detects_structurally_empty_column() {
        let a = csr_from_dense(&[&[1.0, 0.0], &[3.0, 0.0]]);
        assert!(matches!(
            solve_once(&a, &[1.0, 2.0]),
            Err(SolveError::Singular(1))
        ));
    }

    #[test]
    fn badly_scaled_but_well_conditioned_factors() {
        // Everything around 1e-200: far below the old absolute threshold but
        // perfectly conditioned — the relative test must accept it.
        let a = csr_from_dense(&[&[2.0e-200, 1.0e-200], &[1.0e-200, 3.0e-200]]);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0e-200, 4.0e-200]).unwrap();
        // Exact solution of [[2,1],[1,3]]·x = [3,4] is [1, 1].
        assert!((x[0] - 1.0).abs() < 1e-10, "x0 = {}", x[0]);
        assert!((x[1] - 1.0).abs() < 1e-10, "x1 = {}", x[1]);
    }

    #[test]
    fn relatively_tiny_pivot_is_singular() {
        // A genuinely deficient column hidden behind mixed scales.
        let b = csr_from_dense(&[&[1.0e20, 1.0e4], &[1.0, 1.0e-16]]);
        // Elimination: row1 − 1e-20·row0 leaves ~1e-16 − 1e-16 at (1,1); the
        // exact value cancels to 0 and anything left is noise far below the
        // column scale (col_max = 1e4) times the relative threshold.
        assert!(matches!(SparseLu::factor(&b), Err(SolveError::Singular(1))));
    }

    #[test]
    fn rejects_non_square() {
        let mut t = TripletMatrix::<f64>::new(2, 3);
        t.push(0, 0, 1.0);
        assert!(matches!(
            SparseLu::factor(&t.to_csr()),
            Err(SolveError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a = csr_from_dense(&[&[1.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(SolveError::RhsLength {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn repeated_solves_reuse_factorization() {
        let a = csr_from_dense(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        for k in 1..5 {
            let x_true = vec![k as f64, -(k as f64)];
            let b = a.mul_vec(&x_true);
            let x = lu.solve(&b).unwrap();
            assert!((x[0] - x_true[0]).abs() < 1e-12);
            assert!((x[1] - x_true[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn larger_banded_system() {
        // Tridiagonal resistive-ladder-like matrix.
        let n = 50;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn complex_system_roundtrip() {
        let n = 12;
        let mut t = TripletMatrix::<Complex64>::new(n, n);
        for i in 0..n {
            t.push(i, i, Complex64::new(3.0, 1.0 + i as f64 * 0.1));
            if i + 1 < n {
                t.push(i, i + 1, Complex64::new(-1.0, 0.3));
                t.push(i + 1, i, Complex64::new(0.2, -0.8));
            }
        }
        let a = t.to_csr();
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-10);
        }
    }

    #[test]
    fn fill_in_is_tracked() {
        // Arrow matrix: dense last row/column creates fill-in.
        let n = 10;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i + 1 < n {
                t.push(i, n - 1, 1.0);
                t.push(n - 1, i, 1.0);
            }
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.factor_nnz() >= a.nnz());
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        // Same pattern, different values: refactor must reproduce the fresh
        // solution without falling back.
        let a = csr_from_dense(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let b_mat = csr_from_dense(&[&[7.0, 2.0, 0.0], &[2.0, 9.0, 1.0], &[0.0, 1.0, 8.0]]);
        let rhs = b_mat.mul_vec(&[1.0, -2.0, 0.5]);
        let fresh = SparseLu::factor(&b_mat).unwrap().solve(&rhs).unwrap();
        let lu = SparseLu::refactor(&symbolic, &b_mat).unwrap();
        assert!(lu.refactored(), "pattern reuse must not fall back here");
        let re = lu.solve(&rhs).unwrap();
        for (f, r) in fresh.iter().zip(&re) {
            assert!((f - r).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_handles_fill_in_pattern() {
        // Arrow matrix with fill-in: the reused pattern must include fill.
        let n = 8;
        let build = |scale: f64| {
            let mut t = TripletMatrix::<f64>::new(n, n);
            for i in 0..n {
                t.push(i, i, 4.0 * scale + i as f64);
                if i + 1 < n {
                    t.push(i, n - 1, 1.0 * scale);
                    t.push(n - 1, i, 1.5 / scale);
                }
            }
            t.to_csr()
        };
        let (_, symbolic) = SparseLu::factor_with_symbolic(&build(1.0)).unwrap();
        let m2 = build(1.7);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 - 0.3 * i as f64).collect();
        let rhs = m2.mul_vec(&x_true);
        let lu = SparseLu::refactor(&symbolic, &m2).unwrap();
        assert!(lu.refactored());
        let x = lu.solve(&rhs).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn refactor_falls_back_on_degraded_pivot() {
        // First matrix is diagonally dominant; the second flips the weight so
        // the recorded pivot order becomes terrible and the row-relative
        // pivot check must trigger the pivoting fallback.
        let a = csr_from_dense(&[&[1.0, 1.0e-3], &[1.0e-3, 1.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let b = csr_from_dense(&[&[1.0e-12, 1.0], &[1.0, 1.0e-12]]);
        let lu = SparseLu::refactor(&symbolic, &b).unwrap();
        assert!(!lu.refactored(), "degraded pivot must force fresh pivoting");
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        // b is (to 1e-12) the exchange matrix: x ≈ [2, 1].
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn refactor_rejects_pattern_mismatch_gracefully() {
        let a = csr_from_dense(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        // A different pattern (off-diagonal entries) must fall back, not
        // corrupt the factorization.
        let b = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = SparseLu::refactor(&symbolic, &b).unwrap();
        assert!(!lu.refactored());
        let x = lu.solve(&[3.0, 4.0]).unwrap();
        let r = b.mul_vec(&x);
        assert!((r[0] - 3.0).abs() < 1e-12 && (r[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn refactor_dimension_mismatch_is_hard_error() {
        let a = csr_from_dense(&[&[1.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let b = csr_from_dense(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(matches!(
            SparseLu::refactor(&symbolic, &b),
            Err(SolveError::NotSquare { .. })
        ));
    }

    #[test]
    fn symbolic_reports_pattern_size() {
        let a = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let (lu, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        assert_eq!(symbolic.dim(), 2);
        assert_eq!(symbolic.fill_nnz(), lu.factor_nnz());
        assert_eq!(symbolic.pivot_order().len(), 2);
    }

    #[test]
    fn solve_error_display() {
        assert_eq!(
            SolveError::Singular(2).to_string(),
            "matrix is singular at elimination step 2"
        );
        assert_eq!(
            SolveError::NotSquare { rows: 2, cols: 3 }.to_string(),
            "matrix is not square (2x3)"
        );
        assert_eq!(
            SolveError::RhsLength {
                expected: 4,
                got: 2
            }
            .to_string(),
            "right-hand side has length 2, expected 4"
        );
    }
}
