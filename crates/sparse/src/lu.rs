//! Sparse LU factorization with a symbolic/numeric split, fill-reducing
//! ordering and allocation-free hot paths.
//!
//! The solver is organised around the workload of the stability analyses: the
//! same MNA sparsity pattern is factored hundreds of times per sweep (once
//! per frequency point, Newton iteration or timestep) with only the numeric
//! values changing. Three layers serve that workload:
//!
//! * [`SparseLu::factor`] — a **fresh factorization with partial pivoting**
//!   (largest modulus in the pivot column among the remaining rows). Rows are
//!   kept as flat sorted `(col, value)` vectors and elimination updates are
//!   two-pointer merges, so there is no tree/map traversal in the hot loop.
//!   Pivoting makes this path robust for MNA matrices, which carry zero
//!   diagonals on voltage-source branch rows.
//! * [`SparseLu::factor_ordered`] — a **KLU-style threshold-pivoting
//!   factorization** that eliminates columns in a caller-supplied
//!   fill-reducing order (see [`crate::ordering`]). At each step the row the
//!   ordering prefers is accepted as long as its pivot stays within
//!   [`ORDERED_PIVOT_THRESHOLD`] of the largest candidate; only when numerics
//!   degrade does the factorization swap rows like partial pivoting would.
//!   This keeps the fill (and therefore every later refactorization) near the
//!   structural optimum instead of whatever magnitudes dictate.
//! * [`SparseLu::refactor`] / [`SparseLu::refactor_into`] — **numeric-only
//!   refactorizations** that reuse a [`SymbolicLu`] (row *and* column
//!   permutations plus fill pattern) captured by
//!   [`SparseLu::factor_with_symbolic`] or
//!   [`SparseLu::factor_with_symbolic_ordered`]. They run a left-looking pass
//!   over the precomputed pattern with a scatter/gather dense work row: no
//!   pivot search, no fill discovery — and `refactor_into` additionally reuses
//!   the L/U value buffers and a caller-held [`LuWorkspace`], so the hot loop
//!   performs **zero heap allocations**. When a pivot degrades numerically
//!   (or the matrix pattern no longer matches) they transparently fall back
//!   to a fresh pivoting factorization; [`SparseLu::refactored`] reports
//!   which path ran.
//!
//! Solves follow the same split: [`SparseLu::solve_into`] is the
//! allocation-free path (forward/backward substitution into caller-held
//! buffers), and [`SparseLu::solve`] is a thin convenience wrapper over it
//! for one-off solves.
//!
//! Structural zeros are preserved during elimination (entries that cancel
//! exactly are kept), so the recorded fill pattern is value-independent and
//! remains valid for any matrix with the same structure.
//!
//! Singularity is detected **per pivot column, relative to that column's
//! largest entry modulus in the input matrix** rather than against an
//! absolute epsilon. Badly scaled but well-conditioned systems (e.g.
//! everything in nano-units) factor cleanly, genuinely rank-deficient
//! columns are still rejected, and — unlike a matrix-wide norm test — a
//! tiny-but-healthy column (a GMIN shunt next to a huge admittance) is not
//! misclassified just because unrelated entries are large.

use crate::csr::CsrMatrix;
use crate::kernels::{self, KernelBackend};
use crate::scalar::Scalar;
use std::fmt;
use std::sync::Arc;

/// Error produced by factorization or solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular: no usable pivot exists for the given column.
    /// The payload is always the **original** (un-permuted) matrix column
    /// index, whatever fill-reducing or block-triangular permutations the
    /// factorization applied internally — the index a caller can map back
    /// to a circuit unknown.
    Singular(usize),
    /// The matrix is not square.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    RhsLength {
        /// Matrix dimension.
        expected: usize,
        /// Supplied right-hand-side length.
        got: usize,
    },
    /// The matrix contains a non-finite (NaN or ±∞) entry. Detected up
    /// front by [`SparseLu::factor`] / [`SparseLu::refactor_into`] so a
    /// poisoned stamp fails fast with coordinates instead of silently
    /// corrupting the factors: NaN compares false against every pivot
    /// threshold and would otherwise sail through the magnitude checks.
    /// Coordinates are **original** (un-permuted) row/column indices of the
    /// first offending stored entry in row-major order — deterministic for
    /// a given matrix, and mappable back to a circuit unknown.
    NonFinite {
        /// Original row index of the first non-finite entry.
        row: usize,
        /// Original column index of the first non-finite entry.
        col: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular(c) => write!(f, "matrix is singular in column {c}"),
            SolveError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            SolveError::RhsLength { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
            SolveError::NonFinite { row, col } => {
                write!(f, "matrix has a non-finite entry at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A pivot is declared numerically singular when its modulus falls below
/// this fraction of **its column's** largest entry modulus in the input
/// matrix. Column-relative (rather than absolute, or matrix-norm-relative)
/// so uniformly scaled systems behave identically at any magnitude and a
/// small-but-healthy column is not poisoned by large entries elsewhere.
const SINGULARITY_RELATIVE: f64 = 1.0e-14;

/// During a refactorization the precomputed pivot order is trusted only while
/// each pivot stays within this factor of the largest modulus in its U row;
/// below it the factorization falls back to fresh partial pivoting.
const REFACTOR_PIVOT_RELATIVE: f64 = 1.0e-8;

/// Normwise backward error a refined solve must reach before
/// [`SparseLu::solve_refined_into`] stops iterating. A backward-stable LU
/// solve lands near machine epsilon (~1e-16); this threshold leaves two
/// orders of headroom so healthy solves pass on the direct solution with
/// **zero** refinement steps, while genuinely contaminated solutions (stale
/// factors, degraded pivots) fail it and trigger refinement.
pub const REFINE_BACKWARD_TOLERANCE: f64 = 1.0e-12;

/// Maximum number of refinement corrections [`SparseLu::solve_refined_into`]
/// applies before giving up. Fixed-iteration by design: with a working
/// factorization each step multiplies the error by the same contraction
/// factor, so if four steps have not converged, more will not either.
pub const REFINE_MAX_STEPS: usize = 4;

/// Relative pivot threshold of the ordered (fill-reducing) factorization,
/// the same role and magnitude as KLU's default `tol`: the row preferred by
/// the fill-reducing order is accepted as pivot while its modulus stays
/// within this factor of the largest candidate in the pivot column; below
/// it, magnitude wins and rows are swapped.
pub const ORDERED_PIVOT_THRESHOLD: f64 = 1.0e-3;

/// The pivot order and fill pattern of an LU factorization, independent of
/// the numeric values.
///
/// Produced by [`SparseLu::factor_with_symbolic`] (partial pivoting, natural
/// column order) or [`SparseLu::factor_with_symbolic_ordered`] (threshold
/// pivoting over a fill-reducing column order); consumed by
/// [`SparseLu::refactor`] / [`SparseLu::refactor_into`] to factor further
/// matrices **with the same sparsity pattern** without re-running pivot
/// search or fill-in discovery. Both the row permutation (pivot order) and
/// the column permutation (elimination order) are recorded. The pattern is
/// value-independent because the analysis keeps structural zeros, so it
/// stays valid for every matrix assembled over the same structure.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    /// Shared with every [`SparseLu`] produced from it, so capturing and
    /// reusing a pattern never copies the index arrays.
    pattern: Arc<LuPattern>,
}

/// The immutable permutations + fill-pattern data shared (via `Arc`) between
/// a [`SymbolicLu`] and the factorizations built over it.
#[derive(Debug, Clone)]
struct LuPattern {
    n: usize,
    /// `perm[k]` is the original row index used as pivot row at step `k`.
    perm: Vec<usize>,
    /// `cperm[k]` is the original column eliminated at step `k` (identity for
    /// the natural-order factorizations).
    cperm: Vec<usize>,
    /// Inverse of `cperm`: `cpos[c]` is the elimination step of original
    /// column `c`.
    cpos: Vec<usize>,
    /// CSR-style pattern of the strictly-lower factor, indexed by elimination
    /// step: `l_cols[l_ptr[i]..l_ptr[i+1]]` are the (ascending) pivot columns
    /// eliminated from row `perm[i]`, in elimination-column coordinates.
    l_ptr: Vec<usize>,
    l_cols: Vec<usize>,
    /// CSR-style pattern of the upper factor, indexed by elimination step;
    /// the first column of each row is the diagonal. Columns are in
    /// elimination coordinates (apply `cperm` to map back).
    u_ptr: Vec<usize>,
    u_cols: Vec<usize>,
    /// Elimination-step boundaries of the BTF diagonal blocks:
    /// `block_ptr[b]..block_ptr[b + 1]` is block `b`. `[0, n]` (one block)
    /// for every non-BTF factorization.
    block_ptr: Vec<usize>,
    /// CSR-style pattern of the off-diagonal (later-block) entries per
    /// elimination row — the raw matrix entries of pivot row `perm[i]` in
    /// columns of blocks after `i`'s own, in ascending elimination-column
    /// order. Empty for single-block factorizations. These entries are
    /// never eliminated: block back-substitution consumes them as-is.
    f_ptr: Vec<usize>,
    f_cols: Vec<usize>,
    /// The kernel backend every numeric pass over this pattern runs
    /// (recorded once when the symbolic analysis is built — see
    /// [`kernels::selected_backend`] — so a whole sweep is one code path).
    backend: KernelBackend,
}

impl LuPattern {
    /// The trivial single-block partition of a dimension-`n` pattern.
    fn single_block(n: usize) -> Vec<usize> {
        vec![0, n]
    }

    /// An empty off-diagonal pattern for a dimension-`n` single-block
    /// factorization.
    fn empty_f(n: usize) -> Vec<usize> {
        vec![0; n + 1]
    }
}

impl SymbolicLu {
    /// Matrix dimension this pattern was computed for.
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// Total number of pattern entries the factorization stores: L and U
    /// (fill-in included) plus, for block-triangular factorizations, the
    /// raw off-diagonal block entries the block back-substitution consumes.
    pub fn fill_nnz(&self) -> usize {
        self.pattern.l_cols.len() + self.pattern.u_cols.len() + self.pattern.f_cols.len()
    }

    /// Number of diagonal blocks of the block-triangular partition: 1 for
    /// every factorization produced without BTF analysis (or when the
    /// pattern is irreducible and BTF degenerates).
    pub fn block_count(&self) -> usize {
        self.pattern.block_ptr.len() - 1
    }

    /// The block partition in elimination-step coordinates:
    /// `block_boundaries()[b]..block_boundaries()[b + 1]` spans diagonal
    /// block `b`; the slice has [`block_count`](SymbolicLu::block_count)` + 1`
    /// entries (`[0, n]` for single-block factorizations).
    pub fn block_boundaries(&self) -> &[usize] {
        &self.pattern.block_ptr
    }

    /// The pivot (row) order: element `k` is the original row eliminated at
    /// step `k`.
    pub fn pivot_order(&self) -> &[usize] {
        &self.pattern.perm
    }

    /// The column elimination order: element `k` is the original column
    /// eliminated at step `k`. The identity permutation for factorizations
    /// produced without a fill-reducing ordering.
    pub fn column_order(&self) -> &[usize] {
        &self.pattern.cperm
    }

    /// The kernel backend every numeric refactorization and solve over this
    /// pattern runs — recorded once when the analysis was built, from
    /// [`kernels::selected_backend`] (AVX2 when detected, overridable via
    /// the `LOOPSCOPE_KERNEL` environment knob).
    pub fn kernel_backend(&self) -> KernelBackend {
        self.pattern.backend
    }

    /// A copy of this symbolic analysis pinned to an explicit kernel
    /// backend — the A/B hook the scalar-vs-SIMD bitwise tests and the
    /// kernel bench tables use, so two backends can be compared in one
    /// process without touching the `LOOPSCOPE_KERNEL` environment. The
    /// permutations and fill pattern are copied, not shared, so the
    /// original analysis is untouched.
    ///
    /// Pinning [`KernelBackend::Avx2`] on hardware without AVX2 support
    /// would make later factorizations/solves undefined; pass only backends
    /// that [`kernels::simd_available`] (or [`kernels::selected_backend`])
    /// vouches for. [`KernelBackend::Scalar`] is always safe.
    pub fn with_kernel_backend(&self, backend: KernelBackend) -> SymbolicLu {
        assert!(
            !backend.is_simd() || kernels::simd_available(),
            "cannot pin a SIMD kernel backend on hardware without it"
        );
        SymbolicLu {
            pattern: Arc::new(LuPattern {
                backend,
                ..(*self.pattern).clone()
            }),
        }
    }
}

/// Largest modulus per *elimination* column of `matrix` (original columns
/// mapped through `cpos`), written into `out` — the per-column reference
/// scale for the relative singularity test. Reuses the allocations of `out`
/// and the `arg` argmax scratch.
///
/// The scan runs on squared magnitudes ([`Scalar::modulus_sqr`], no `hypot`
/// in the per-entry loop) and finalizes each column with **one** exact
/// [`Scalar::modulus`] on the winning entry. Squares degenerate outside
/// roughly `1e-154..1e154` (underflow to zero/subnormal, overflow to
/// infinity), which would corrupt the argmax — in that case the whole scan
/// is redone with exact moduli, so badly scaled but well-conditioned systems
/// keep the guarantees of the module-level singularity rule.
///
/// Fails with [`SolveError::NonFinite`] on the first non-finite stored
/// entry (row-major order, original coordinates).
fn column_max_moduli_into<T: Scalar>(
    matrix: &CsrMatrix<T>,
    cpos: &[usize],
    out: &mut Vec<f64>,
    arg: &mut Vec<T>,
) -> Result<(), SolveError> {
    out.clear();
    out.resize(matrix.cols(), 0.0);
    arg.clear();
    arg.resize(matrix.cols(), T::ZERO);
    let mut squares_exact = true;
    for (r, c, v) in matrix.iter() {
        if !v.is_finite() {
            return Err(SolveError::NonFinite { row: r, col: c });
        }
        let m2 = v.modulus_sqr();
        // A trustworthy square is either normal or an exact zero from an
        // exactly-zero entry (structural zeros are common and fine).
        if !(m2.is_normal() || v.is_zero()) {
            squares_exact = false;
        }
        let cc = cpos[c];
        if m2 > out[cc] {
            out[cc] = m2;
            arg[cc] = v;
        }
    }
    if squares_exact {
        for (scale, v) in out.iter_mut().zip(arg.iter()) {
            if *scale > 0.0 {
                *scale = v.modulus();
            }
        }
    } else {
        // Some square under/overflowed: the argmax above may have picked the
        // wrong entry (or missed every entry of a sub-1e-154 column). Redo
        // the scan with exact moduli — rare, and correctness beats speed
        // in these scale regimes.
        for s in out.iter_mut() {
            *s = 0.0;
        }
        for (_, c, v) in matrix.iter() {
            let m = v.modulus();
            let cc = cpos[c];
            if m > out[cc] {
                out[cc] = m;
            }
        }
    }
    Ok(())
}

/// Largest modulus over a value slice — squared-magnitude scan with one
/// exact [`Scalar::modulus`] on the winner, falling back to a full exact
/// scan when any square degenerates (same rule as
/// [`column_max_moduli_into`]).
fn exact_max_modulus<T: Scalar>(vals: &[T]) -> f64 {
    let mut max_sqr = 0.0f64;
    let mut arg = T::ZERO;
    let mut exact = true;
    for &v in vals {
        let m2 = v.modulus_sqr();
        if !(m2.is_normal() || v.is_zero()) {
            exact = false;
        }
        if m2 > max_sqr {
            max_sqr = m2;
            arg = v;
        }
    }
    if exact {
        if max_sqr > 0.0 {
            arg.modulus()
        } else {
            0.0
        }
    } else {
        vals.iter().map(|v| v.modulus()).fold(0.0f64, f64::max)
    }
}

/// The matrix scales a successful refactorization records on its
/// factorization (see the `a_max_modulus` / `u_max_modulus` fields of
/// [`SparseLu`]).
struct RefactorScales {
    a_max: f64,
    u_max: f64,
}

/// Why a numeric-only refactorization could not be completed; drives the
/// fallback in [`SparseLu::refactor`] / [`SparseLu::refactor_into`].
enum RefactorFailure {
    /// A pivot fell below the numeric quality threshold at the given step;
    /// a fresh pivoting factorization may still succeed.
    Degraded,
    /// The matrix contains an entry outside the recorded fill pattern.
    PatternMismatch,
    /// A hard error that no fallback can fix.
    Hard(SolveError),
}

/// Reusable scratch buffers for the allocation-free refactorization path
/// ([`SparseLu::refactor_into`]).
///
/// Holds the dense scatter/gather work row, the per-column marker array and
/// the per-column magnitude scales. Create one next to the [`SymbolicLu`]
/// whose matrices it will serve and pass it to every `refactor_into` call;
/// after the first call no further heap allocation happens (buffers are
/// retained at matrix dimension).
#[derive(Debug, Clone)]
pub struct LuWorkspace<T: Scalar> {
    work: Vec<T>,
    /// Per-column markers. A column `c` is live for elimination step `i` of
    /// the current call iff `marked[c] == stamp + i`; advancing `stamp` by
    /// `n` per call invalidates every previous mark without an O(n) refill.
    marked: Vec<usize>,
    stamp: usize,
    col_max: Vec<f64>,
    /// Per-column argmax entries of the squared-magnitude column scan (see
    /// [`column_max_moduli_into`]); scratch only, never read across calls.
    col_arg: Vec<T>,
}

impl<T: Scalar> Default for LuWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> LuWorkspace<T> {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            work: Vec::new(),
            marked: Vec::new(),
            stamp: 0,
            col_max: Vec::new(),
            col_arg: Vec::new(),
        }
    }

    /// Creates a workspace pre-sized for matrices of dimension `n`, so even
    /// the **first** [`SparseLu::refactor_into`] call over it performs no
    /// heap allocation. This is what per-worker solve contexts use: every
    /// allocation happens when the context is minted, none in the sweep loop.
    pub fn for_dim(n: usize) -> Self {
        Self {
            work: vec![T::ZERO; n],
            marked: vec![usize::MAX; n],
            stamp: 0,
            col_max: vec![0.0; n],
            col_arg: vec![T::ZERO; n],
        }
    }

    /// Prepares the scatter buffers for a matrix of dimension `n`. The work
    /// row needs no zeroing (every slot is zeroed by the per-step scatter
    /// before it is read) and the markers are invalidated by bumping the
    /// stamp, so a same-size reset is O(1).
    fn reset(&mut self, n: usize) {
        if self.work.len() != n {
            self.work.clear();
            self.work.resize(n, T::ZERO);
            self.marked.clear();
            self.marked.resize(n, usize::MAX);
            self.stamp = 0;
        } else {
            // `usize::MAX` (the virgin marker) stays unreachable because the
            // stamp would need ~2^64/n calls to get near it.
            self.stamp += n;
        }
    }
}

/// An LU factorization `P·A·Q = L·U` of a sparse square matrix (`Q` is the
/// identity unless a fill-reducing column order was supplied).
///
/// Factors are stored flat (CSR-style index/value arrays ordered by
/// elimination step), so a solve is two cache-friendly sweeps. A
/// factorization can be reused for any number of right-hand sides — use
/// [`solve_into`](SparseLu::solve_into) in hot loops and
/// [`solve`](SparseLu::solve) for one-offs; with a [`SymbolicLu`] the
/// *pattern* can additionally be reused across matrices via
/// [`refactor`](SparseLu::refactor) / [`refactor_into`](SparseLu::refactor_into).
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar> {
    /// Permutations and L/U index pattern, shared (not copied) with the
    /// [`SymbolicLu`] this factorization came from or can hand out.
    pattern: Arc<LuPattern>,
    l_vals: Vec<T>,
    u_vals: Vec<T>,
    /// Raw off-diagonal block values (pattern `f_ptr`/`f_cols`); empty for
    /// single-block factorizations.
    f_vals: Vec<T>,
    /// Whether this factorization was produced by pattern-reusing
    /// refactorization (`true`) or fresh pivoting (`false`).
    refactored: bool,
    /// Largest entry modulus of the factored matrix, recorded at
    /// factorization time so the pivot-growth report of
    /// `solve_refined_into` costs O(1) per solve. Zero on an unfilled
    /// `from_symbolic` shell.
    a_max_modulus: f64,
    /// Largest entry modulus of the U factor, recorded like `a_max_modulus`.
    u_max_modulus: f64,
}

/// Computes `merged = a − factor·p` for two sorted sparse rows, keeping the
/// full union pattern (entries that cancel to exact zero are preserved so the
/// fill pattern stays value-independent).
fn merge_sub<T: Scalar>(a: &[(usize, T)], p: &[(usize, T)], factor: T, out: &mut Vec<(usize, T)>) {
    out.clear();
    out.reserve(a.len() + p.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < p.len() {
        let (ac, av) = a[i];
        let (pc, pv) = p[j];
        if ac == pc {
            out.push((ac, av - factor * pv));
            i += 1;
            j += 1;
        } else if ac < pc {
            out.push((ac, av));
            i += 1;
        } else {
            out.push((pc, -(factor * pv)));
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    for &(pc, pv) in &p[j..] {
        out.push((pc, -(factor * pv)));
    }
}

impl<T: Scalar> SparseLu<T> {
    /// Factors a square sparse matrix with partial pivoting.
    ///
    /// Columns are eliminated in natural order and the pivot row at each step
    /// is the candidate with the largest modulus — robust, but oblivious to
    /// fill. For matrices that will be factored repeatedly, prefer
    /// [`factor_ordered`](SparseLu::factor_ordered) with a fill-reducing
    /// order from [`crate::ordering`].
    ///
    /// ```
    /// use loopscope_sparse::{SparseLu, TripletMatrix};
    ///
    /// let mut t = TripletMatrix::<f64>::new(2, 2);
    /// t.push(0, 0, 2.0);
    /// t.push(0, 1, 1.0);
    /// t.push(1, 0, 1.0);
    /// t.push(1, 1, 3.0);
    /// let lu = SparseLu::factor(&t.to_csr())?;
    /// let x = lu.solve(&[5.0, 10.0])?;
    /// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    /// # Ok::<(), loopscope_sparse::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for rectangular input and
    /// [`SolveError::Singular`] when no acceptable pivot exists at some step.
    pub fn factor(matrix: &CsrMatrix<T>) -> Result<Self, SolveError> {
        Self::factor_impl(matrix, None)
    }

    /// Factors a square sparse matrix eliminating columns in the supplied
    /// fill-reducing order, with KLU-style relative threshold pivoting.
    ///
    /// `col_order[k]` names the original column (and, preferentially, the
    /// original row — MNA orderings are symmetric) eliminated at step `k`;
    /// [`crate::ordering::min_degree_order`] computes a suitable order from
    /// the matrix pattern. At each step the preferred row is accepted while
    /// its pivot modulus stays within [`ORDERED_PIVOT_THRESHOLD`] of the
    /// largest candidate in the column; otherwise the sparsest candidate
    /// above the threshold is chosen, so numerics can force a swap but never
    /// silently degrade.
    ///
    /// # Errors
    ///
    /// Same conditions as [`factor`](SparseLu::factor).
    ///
    /// # Panics
    ///
    /// Panics if `col_order` is not a permutation of `0..matrix.rows()`.
    pub fn factor_ordered(matrix: &CsrMatrix<T>, col_order: &[usize]) -> Result<Self, SolveError> {
        Self::factor_impl(matrix, Some(col_order))
    }

    fn factor_impl(matrix: &CsrMatrix<T>, col_order: Option<&[usize]>) -> Result<Self, SolveError> {
        let n = matrix.rows();
        if matrix.cols() != n {
            return Err(SolveError::NotSquare {
                rows: n,
                cols: matrix.cols(),
            });
        }
        // Column permutation: cperm[k] = original column eliminated at step
        // k; cpos is its inverse. Identity when no ordering is supplied.
        let (cperm, cpos) = match col_order {
            Some(order) => {
                assert_eq!(
                    order.len(),
                    n,
                    "column order length must match the matrix dimension"
                );
                let mut cpos = vec![usize::MAX; n];
                for (k, &c) in order.iter().enumerate() {
                    assert!(
                        c < n && cpos[c] == usize::MAX,
                        "column order must be a permutation of 0..n"
                    );
                    cpos[c] = k;
                }
                (order.to_vec(), cpos)
            }
            None => ((0..n).collect::<Vec<_>>(), (0..n).collect::<Vec<_>>()),
        };
        let ordered = col_order.is_some();

        // Per-elimination-column reference scales for the relative
        // singularity test; also rejects non-finite input up front.
        let mut col_max = Vec::new();
        let mut col_arg = Vec::new();
        column_max_moduli_into(matrix, &cpos, &mut col_max, &mut col_arg)?;

        // Working rows as (elimination-column, value) vectors sorted by
        // column. After step k every still-active row starts at a column > k,
        // so "row contains the pivot column" is a check of its first entry.
        let mut rows: Vec<Vec<(usize, T)>> = (0..n)
            .map(|r| {
                let mut row: Vec<(usize, T)> =
                    matrix.row_entries(r).map(|(c, v)| (cpos[c], v)).collect();
                if ordered {
                    row.sort_unstable_by_key(|&(c, _)| c);
                }
                row
            })
            .collect();
        let mut active: Vec<usize> = (0..n).collect();
        // L entries per ORIGINAL row index, pushed in ascending step order.
        let mut l_rows: Vec<Vec<(usize, T)>> = vec![Vec::new(); n];
        let mut u_rows: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);
        let mut perm = Vec::with_capacity(n);
        let mut scratch: Vec<(usize, T)> = Vec::new();

        // The loop is over elimination steps, not col_max; indexing is
        // clearer than iterating the threshold table.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            let (active_idx, pivot_mod) = if ordered {
                Self::select_threshold_pivot(&rows, &active, k, cperm[k])
            } else {
                // Partial pivoting: among active rows holding column k, take
                // the one with the largest modulus there.
                let mut best: Option<(usize, f64)> = None;
                for (ai, &r) in active.iter().enumerate() {
                    if let Some(&(c, v)) = rows[r].first() {
                        if c == k {
                            let m = v.modulus();
                            if best.is_none_or(|(_, bm)| m > bm) {
                                best = Some((ai, m));
                            }
                        }
                    }
                }
                best
            }
            // Report singularity against the ORIGINAL column index: callers
            // see the unknown they can map back to the circuit, not the
            // position some fill-reducing permutation moved it to.
            .ok_or(SolveError::Singular(cperm[k]))?;
            // Elimination can overflow into ±∞/NaN even when the input was
            // finite; NaN would pass the threshold checks below (every
            // comparison false), so reject it explicitly.
            if !pivot_mod.is_finite() {
                return Err(SolveError::NonFinite {
                    row: active[active_idx],
                    col: cperm[k],
                });
            }
            if pivot_mod <= col_max[k] * SINGULARITY_RELATIVE || pivot_mod == 0.0 {
                return Err(SolveError::Singular(cperm[k]));
            }
            let pivot_row = active.swap_remove(active_idx);
            let pivot = std::mem::take(&mut rows[pivot_row]);
            let pivot_val = pivot[0].1;

            // Eliminate column k from the remaining active rows.
            for &r in &active {
                let Some(&(c, a_rk)) = rows[r].first() else {
                    continue;
                };
                if c != k {
                    continue;
                }
                let factor = a_rk / pivot_val;
                merge_sub(&rows[r][1..], &pivot[1..], factor, &mut scratch);
                std::mem::swap(&mut rows[r], &mut scratch);
                // Record even exact-zero multipliers: the L pattern must not
                // depend on the numeric values.
                l_rows[r].push((k, factor));
            }

            perm.push(pivot_row);
            u_rows.push(pivot);
        }

        // Flatten into CSR-style arrays ordered by elimination step.
        let mut l_ptr = Vec::with_capacity(n + 1);
        let mut l_cols = Vec::new();
        let mut l_vals = Vec::new();
        let mut u_ptr = Vec::with_capacity(n + 1);
        let mut u_cols = Vec::new();
        let mut u_vals = Vec::new();
        l_ptr.push(0);
        u_ptr.push(0);
        for (i, u_row) in u_rows.into_iter().enumerate() {
            for (c, v) in std::mem::take(&mut l_rows[perm[i]]) {
                l_cols.push(c);
                l_vals.push(v);
            }
            l_ptr.push(l_cols.len());
            debug_assert_eq!(u_row[0].0, i, "pivot row must start at its diagonal");
            for (c, v) in u_row {
                u_cols.push(c);
                u_vals.push(v);
            }
            u_ptr.push(u_cols.len());
        }

        let a_max = col_max.iter().fold(0.0f64, |a, &b| a.max(b));
        let u_max = exact_max_modulus(&u_vals);
        Ok(Self {
            pattern: Arc::new(LuPattern {
                n,
                perm,
                cperm,
                cpos,
                l_ptr,
                l_cols,
                u_ptr,
                u_cols,
                block_ptr: LuPattern::single_block(n),
                f_ptr: LuPattern::empty_f(n),
                f_cols: Vec::new(),
                backend: kernels::selected_backend(),
            }),
            l_vals,
            u_vals,
            f_vals: Vec::new(),
            refactored: false,
            a_max_modulus: a_max,
            u_max_modulus: u_max,
        })
    }

    /// KLU-style pivot selection for the ordered factorization at step `k`:
    /// the row the ordering prefers (`preferred_row`, the symmetric-diagonal
    /// choice) wins while its modulus stays within
    /// [`ORDERED_PIVOT_THRESHOLD`] of the best candidate; otherwise the
    /// shortest (least fill-producing) candidate above the threshold wins,
    /// with modulus and then row index breaking ties deterministically.
    fn select_threshold_pivot(
        rows: &[Vec<(usize, T)>],
        active: &[usize],
        k: usize,
        preferred_row: usize,
    ) -> Option<(usize, f64)> {
        let mut max_mod = 0.0f64;
        for &r in active {
            if let Some(&(c, v)) = rows[r].first() {
                if c == k {
                    max_mod = max_mod.max(v.modulus());
                }
            }
        }
        if max_mod == 0.0 {
            return None;
        }
        let acceptance = ORDERED_PIVOT_THRESHOLD * max_mod;
        // (active index, modulus, row length, original row index)
        let mut best: Option<(usize, f64, usize, usize)> = None;
        for (ai, &r) in active.iter().enumerate() {
            let Some(&(c, v)) = rows[r].first() else {
                continue;
            };
            if c != k {
                continue;
            }
            let m = v.modulus();
            if m == 0.0 || m < acceptance {
                continue;
            }
            if r == preferred_row {
                // Numerics did not force a swap: respect the ordering.
                return Some((ai, m));
            }
            let len = rows[r].len();
            let better = match best {
                None => true,
                Some((_, bm, blen, brow)) => {
                    len < blen || (len == blen && (m > bm || (m == bm && r < brow)))
                }
            };
            if better {
                best = Some((ai, m, len, r));
            }
        }
        best.map(|(ai, m, _, _)| (ai, m))
    }

    /// Factors a matrix and additionally captures its pivot order and fill
    /// pattern for later [`refactor`](SparseLu::refactor) /
    /// [`refactor_into`](SparseLu::refactor_into) calls.
    ///
    /// # Errors
    ///
    /// Same conditions as [`factor`](SparseLu::factor).
    pub fn factor_with_symbolic(matrix: &CsrMatrix<T>) -> Result<(Self, SymbolicLu), SolveError> {
        let lu = Self::factor(matrix)?;
        let symbolic = lu.extract_symbolic();
        Ok((lu, symbolic))
    }

    /// Like [`factor_with_symbolic`](SparseLu::factor_with_symbolic) but
    /// eliminating columns in the supplied fill-reducing order with threshold
    /// pivoting (see [`factor_ordered`](SparseLu::factor_ordered)). The
    /// captured [`SymbolicLu`] records **both** permutations, so every later
    /// refactorization inherits the reduced fill.
    ///
    /// # Errors
    ///
    /// Same conditions as [`factor`](SparseLu::factor).
    ///
    /// # Panics
    ///
    /// Panics if `col_order` is not a permutation of `0..matrix.rows()`.
    pub fn factor_with_symbolic_ordered(
        matrix: &CsrMatrix<T>,
        col_order: &[usize],
    ) -> Result<(Self, SymbolicLu), SolveError> {
        let lu = Self::factor_ordered(matrix, col_order)?;
        let symbolic = lu.extract_symbolic();
        Ok((lu, symbolic))
    }

    /// Factors a matrix **KLU-style**: permute to block upper-triangular
    /// form ([`crate::btf`]), then run a minimum-degree ordered, threshold-
    /// pivoted factorization **per diagonal block** — fill never crosses a
    /// block boundary, and the off-diagonal block entries are stored raw
    /// for the block back-substitution instead of being eliminated.
    ///
    /// When the pattern is irreducible (one strongly connected component —
    /// typical for a single feedback loop), the analysis degenerates to a
    /// single block with identity BTF permutations and this is **exactly**
    /// [`factor_with_symbolic_ordered`](SparseLu::factor_with_symbolic_ordered)
    /// over a [`crate::ordering::min_degree_order`]. For block-structured
    /// circuits (cascaded stages, buffered sub-circuits) the factors shrink:
    /// each block orders and pivots independently, and the cross-block
    /// entries contribute zero fill.
    ///
    /// The captured [`SymbolicLu`] records the composed permutations, the
    /// per-block L/U patterns, the off-diagonal pattern and the block
    /// partition, so [`refactor_into`](SparseLu::refactor_into) and
    /// [`solve_into`](SparseLu::solve_into) stay numeric-only and
    /// allocation-free over it.
    ///
    /// ```
    /// use loopscope_sparse::{SparseLu, TripletMatrix};
    ///
    /// // Two strongly coupled unknowns feeding a third (no feedback).
    /// let mut t = TripletMatrix::<f64>::new(3, 3);
    /// t.push(0, 0, 2.0);
    /// t.push(0, 1, 1.0);
    /// t.push(1, 0, 1.0);
    /// t.push(1, 1, 3.0);
    /// t.push(2, 0, 1.0);
    /// t.push(2, 2, 4.0);
    /// let (lu, symbolic) = SparseLu::factor_with_symbolic_btf(&t.to_csr())?;
    /// assert_eq!(symbolic.block_count(), 2);
    /// let x = lu.solve(&[5.0, 10.0, 6.0])?;
    /// assert!((x[0] - 1.0).abs() < 1e-12);
    /// assert!((x[1] - 3.0).abs() < 1e-12);
    /// assert!((x[2] - 1.25).abs() < 1e-12);
    /// # Ok::<(), loopscope_sparse::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for rectangular input and
    /// [`SolveError::Singular`] — carrying the **original** column index —
    /// when the pattern is structurally singular or a block has no
    /// acceptable pivot.
    pub fn factor_with_symbolic_btf(
        matrix: &CsrMatrix<T>,
    ) -> Result<(Self, SymbolicLu), SolveError> {
        let n = matrix.rows();
        if matrix.cols() != n {
            return Err(SolveError::NotSquare {
                rows: n,
                cols: matrix.cols(),
            });
        }
        let form = crate::btf::analyze(matrix)?;
        if form.is_single_block() {
            // Degenerate (irreducible) case: identical to the plain ordered
            // factorization — no permutation shuffling, no F storage.
            let order = crate::ordering::min_degree_order(matrix);
            return Self::factor_with_symbolic_ordered(matrix, &order);
        }
        // Position of every original column in the BTF order.
        let mut btf_cpos = vec![0usize; n];
        for (k, &c) in form.col_perm().iter().enumerate() {
            btf_cpos[c] = k;
        }

        let mut perm = Vec::with_capacity(n);
        let mut cperm = Vec::with_capacity(n);
        let mut l_ptr = Vec::with_capacity(n + 1);
        let mut l_cols = Vec::new();
        let mut l_vals = Vec::new();
        let mut u_ptr = Vec::with_capacity(n + 1);
        let mut u_cols = Vec::new();
        let mut u_vals = Vec::new();
        l_ptr.push(0);
        u_ptr.push(0);
        for b in 0..form.block_count() {
            let range = form.block_range(b);
            let (start, end) = (range.start, range.end);
            let dim = end - start;
            // The diagonal block in block-local coordinates. Entries in
            // later blocks are collected afterwards as the off-diagonal F
            // pattern; entries in earlier blocks cannot exist — the BTF
            // analysis of this very matrix guarantees upper form.
            let mut triplets = crate::triplet::TripletMatrix::new(dim, dim);
            for local_row in 0..dim {
                let row = form.row_perm()[start + local_row];
                for (c, v) in matrix.row_entries(row) {
                    let p = btf_cpos[c];
                    debug_assert!(p >= start, "BTF left an entry below its diagonal block");
                    if p < end {
                        triplets.push(local_row, p - start, v);
                    }
                }
            }
            let local = triplets.to_csr();
            let order = crate::ordering::min_degree_order(&local);
            let block_lu = Self::factor_ordered(&local, &order).map_err(|err| match err {
                // Map the block-local column index back to the original one.
                SolveError::Singular(local_col) => {
                    SolveError::Singular(form.col_perm()[start + local_col])
                }
                other => other,
            })?;
            let bp = &block_lu.pattern;
            for k in 0..dim {
                perm.push(form.row_perm()[start + bp.perm[k]]);
                cperm.push(form.col_perm()[start + bp.cperm[k]]);
                for t in bp.l_ptr[k]..bp.l_ptr[k + 1] {
                    l_cols.push(start + bp.l_cols[t]);
                    l_vals.push(block_lu.l_vals[t]);
                }
                l_ptr.push(l_cols.len());
                for t in bp.u_ptr[k]..bp.u_ptr[k + 1] {
                    u_cols.push(start + bp.u_cols[t]);
                    u_vals.push(block_lu.u_vals[t]);
                }
                u_ptr.push(u_cols.len());
            }
        }

        // Composed inverse column permutation, then the off-diagonal block
        // pattern: the raw entries of each pivot row in later blocks, in
        // ascending elimination-column order.
        let mut cpos = vec![0usize; n];
        for (k, &c) in cperm.iter().enumerate() {
            cpos[c] = k;
        }
        let mut block_end_of_step = vec![0usize; n];
        for b in 0..form.block_count() {
            let range = form.block_range(b);
            for step in range.clone() {
                block_end_of_step[step] = range.end;
            }
        }
        let mut f_ptr = Vec::with_capacity(n + 1);
        let mut f_cols = Vec::new();
        let mut f_vals = Vec::new();
        f_ptr.push(0);
        let mut f_row: Vec<(usize, T)> = Vec::new();
        for (step, &pivot_row) in perm.iter().enumerate() {
            f_row.clear();
            let end = block_end_of_step[step];
            for (c, v) in matrix.row_entries(pivot_row) {
                let p = cpos[c];
                if p >= end {
                    f_row.push((p, v));
                }
            }
            f_row.sort_unstable_by_key(|&(p, _)| p);
            for &(p, v) in &f_row {
                f_cols.push(p);
                f_vals.push(v);
            }
            f_ptr.push(f_cols.len());
        }

        let a_max = matrix.max_modulus();
        let u_max = exact_max_modulus(&u_vals);
        let lu = Self {
            pattern: Arc::new(LuPattern {
                n,
                perm,
                cperm,
                cpos,
                l_ptr,
                l_cols,
                u_ptr,
                u_cols,
                block_ptr: form.block_ptr().to_vec(),
                f_ptr,
                f_cols,
                backend: kernels::selected_backend(),
            }),
            l_vals,
            u_vals,
            f_vals,
            refactored: false,
            a_max_modulus: a_max,
            u_max_modulus: u_max,
        };
        let symbolic = lu.extract_symbolic();
        Ok((lu, symbolic))
    }

    /// Convenience form of
    /// [`factor_with_symbolic_btf`](SparseLu::factor_with_symbolic_btf)
    /// discarding the symbolic analysis.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`factor_with_symbolic_btf`](SparseLu::factor_with_symbolic_btf).
    pub fn factor_btf(matrix: &CsrMatrix<T>) -> Result<Self, SolveError> {
        Ok(Self::factor_with_symbolic_btf(matrix)?.0)
    }

    /// Captures this factorization's permutations and fill pattern — the same
    /// data [`factor_with_symbolic`](SparseLu::factor_with_symbolic) returns.
    ///
    /// Useful to adopt a fresh pattern after
    /// [`refactor`](SparseLu::refactor) fell back to pivoting: the fallback
    /// already computed a healthy pivot order, so callers can reuse it
    /// without paying for another factorization. Cheap: the pattern is
    /// reference-counted, not copied.
    pub fn extract_symbolic(&self) -> SymbolicLu {
        SymbolicLu {
            pattern: Arc::clone(&self.pattern),
        }
    }

    /// Creates an **unfactored shell** over a previously captured symbolic
    /// analysis: the permutations and fill pattern are shared (not copied)
    /// with `symbolic`, and the L/U value buffers are pre-allocated to the
    /// pattern size but still empty.
    ///
    /// This is the buffer-ownership half of the plan/context split used by
    /// parallel sweeps: a shared, immutable plan holds the `SymbolicLu`, and
    /// every worker mints its own `SparseLu` shell from it — no symbolic
    /// analysis is re-run, and the first
    /// [`refactor_into`](SparseLu::refactor_into) over the shell fills the
    /// pre-allocated buffers without heap allocation (pair it with
    /// [`LuWorkspace::for_dim`] for a fully allocation-free worker loop).
    ///
    /// The shell is **not** a valid factorization until a `refactor_into`
    /// call over it succeeds; [`solve_into`](SparseLu::solve_into) /
    /// [`solve`](SparseLu::solve) panic on an unfilled shell.
    pub fn from_symbolic(symbolic: &SymbolicLu) -> Self {
        Self {
            pattern: Arc::clone(&symbolic.pattern),
            l_vals: Vec::with_capacity(symbolic.pattern.l_cols.len()),
            u_vals: Vec::with_capacity(symbolic.pattern.u_cols.len()),
            f_vals: Vec::with_capacity(symbolic.pattern.f_cols.len()),
            refactored: false,
            a_max_modulus: 0.0,
            u_max_modulus: 0.0,
        }
    }

    /// Factors a matrix **reusing the permutations and fill pattern** of a
    /// previous factorization of a matrix with the same structure.
    ///
    /// This is the hot path of frequency sweeps, Newton loops and transient
    /// stepping: a numeric-only left-looking pass with no pivot search and no
    /// fill discovery. When a pivot degrades numerically, or the matrix does
    /// not match the recorded pattern, the call transparently falls back to a
    /// fresh pivoting factorization ([`refactored`](SparseLu::refactored)
    /// returns `false` in that case, signalling that the symbolic analysis
    /// should be refreshed).
    ///
    /// This convenience form allocates fresh L/U value buffers per call; use
    /// [`refactor_into`](SparseLu::refactor_into) to reuse an existing
    /// factorization's buffers in hot loops.
    ///
    /// ```
    /// use loopscope_sparse::{SparseLu, TripletMatrix};
    ///
    /// let build = |g: f64| {
    ///     let mut t = TripletMatrix::<f64>::new(2, 2);
    ///     t.push(0, 0, 2.0 * g);
    ///     t.push(0, 1, -g);
    ///     t.push(1, 0, -g);
    ///     t.push(1, 1, 2.0 * g);
    ///     t.to_csr()
    /// };
    /// let (_, symbolic) = SparseLu::factor_with_symbolic(&build(1.0))?;
    /// // Same pattern, new values: numeric-only refactorization.
    /// let lu = SparseLu::refactor(&symbolic, &build(3.0))?;
    /// assert!(lu.refactored());
    /// let x = lu.solve(&[3.0, 0.0])?;
    /// assert!((x[0] - 2.0 / 3.0).abs() < 1e-12);
    /// # Ok::<(), loopscope_sparse::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for rectangular input or a dimension
    /// mismatch with `symbolic`, and [`SolveError::Singular`] when even the
    /// fallback pivoting factorization finds no acceptable pivot.
    pub fn refactor(symbolic: &SymbolicLu, matrix: &CsrMatrix<T>) -> Result<Self, SolveError> {
        let mut ws = LuWorkspace::new();
        let mut l_vals = Vec::new();
        let mut u_vals = Vec::new();
        let mut f_vals = Vec::new();
        match Self::refactor_core(
            &symbolic.pattern,
            matrix,
            &mut ws,
            &mut l_vals,
            &mut u_vals,
            &mut f_vals,
        ) {
            Ok(scales) => Ok(Self {
                pattern: Arc::clone(&symbolic.pattern),
                l_vals,
                u_vals,
                f_vals,
                refactored: true,
                a_max_modulus: scales.a_max,
                u_max_modulus: scales.u_max,
            }),
            Err(RefactorFailure::Degraded | RefactorFailure::PatternMismatch) => {
                Self::fallback_factor(&symbolic.pattern, matrix)
            }
            Err(RefactorFailure::Hard(e)) => Err(e),
        }
    }

    /// Fresh factorization used when a numeric-only refactorization cannot
    /// proceed. When the stale pattern carried a fill-reducing column order,
    /// the retry keeps it (threshold pivoting will find healthy rows for the
    /// new values), so a mid-sweep fallback re-pivots **without** regressing
    /// to natural-order fill for the rest of the sweep; plain partial
    /// pivoting remains the last resort.
    fn fallback_factor(pattern: &LuPattern, matrix: &CsrMatrix<T>) -> Result<Self, SolveError> {
        let has_ordering = pattern.cperm.iter().enumerate().any(|(k, &c)| k != c);
        if has_ordering && pattern.cperm.len() == matrix.rows() {
            if let Ok(lu) = Self::factor_ordered(matrix, &pattern.cperm) {
                return Ok(lu);
            }
        }
        Self::factor(matrix)
    }

    /// Refactors `matrix` **in place**, reusing this factorization's L/U
    /// value buffers and the caller's [`LuWorkspace`] — the allocation-free
    /// form of [`refactor`](SparseLu::refactor) used by assembly caches.
    ///
    /// After the first call over a given pattern, a healthy refactorization
    /// performs **zero heap allocations**. On success `self` is a valid
    /// factorization of `matrix`; check [`refactored`](SparseLu::refactored)
    /// to learn whether the pattern was reused (`true`) or a fresh pivoting
    /// fallback ran (`false`, in which case the factorization carries a new
    /// pattern worth adopting via [`extract_symbolic`](SparseLu::extract_symbolic)).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for a dimension mismatch (leaving
    /// `self` untouched) and [`SolveError::Singular`] when even the fallback
    /// pivoting factorization fails — in the latter case the contents of
    /// `self` are unspecified and it must be successfully refactored before
    /// the next solve.
    pub fn refactor_into(
        &mut self,
        symbolic: &SymbolicLu,
        matrix: &CsrMatrix<T>,
        ws: &mut LuWorkspace<T>,
    ) -> Result<(), SolveError> {
        let mut l_vals = std::mem::take(&mut self.l_vals);
        let mut u_vals = std::mem::take(&mut self.u_vals);
        let mut f_vals = std::mem::take(&mut self.f_vals);
        match Self::refactor_core(
            &symbolic.pattern,
            matrix,
            ws,
            &mut l_vals,
            &mut u_vals,
            &mut f_vals,
        ) {
            Ok(scales) => {
                if !Arc::ptr_eq(&self.pattern, &symbolic.pattern) {
                    self.pattern = Arc::clone(&symbolic.pattern);
                }
                self.l_vals = l_vals;
                self.u_vals = u_vals;
                self.f_vals = f_vals;
                self.refactored = true;
                self.a_max_modulus = scales.a_max;
                self.u_max_modulus = scales.u_max;
                Ok(())
            }
            Err(RefactorFailure::Degraded | RefactorFailure::PatternMismatch) => {
                *self = Self::fallback_factor(&symbolic.pattern, matrix)?;
                Ok(())
            }
            Err(RefactorFailure::Hard(e)) => {
                // The hard checks run before any buffer is touched: restore
                // the factors so `self` stays valid.
                self.l_vals = l_vals;
                self.u_vals = u_vals;
                self.f_vals = f_vals;
                Err(e)
            }
        }
    }

    /// The numeric-only refactorization pass, writing factor values into the
    /// caller's buffers (cleared, then filled to exactly the pattern size);
    /// failures that a fresh pivoting factorization might fix are reported as
    /// soft [`RefactorFailure`]s. Performs no heap allocation once the
    /// buffers have reached pattern capacity.
    fn refactor_core(
        pattern: &LuPattern,
        matrix: &CsrMatrix<T>,
        ws: &mut LuWorkspace<T>,
        l_vals: &mut Vec<T>,
        u_vals: &mut Vec<T>,
        f_vals: &mut Vec<T>,
    ) -> Result<RefactorScales, RefactorFailure> {
        let n = pattern.n;
        if matrix.rows() != n || matrix.cols() != n {
            return Err(RefactorFailure::Hard(SolveError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            }));
        }
        // Per-elimination-column reference scales of the *new* values for the
        // relative singularity test (same rule as the fresh factorization).
        // Non-finite input is a hard error — and it is detected here, before
        // any factor buffer is cleared, which keeps the refactor_into
        // invariant that hard failures leave `self` valid.
        let mut col_arg = std::mem::take(&mut ws.col_arg);
        let scan = column_max_moduli_into(matrix, &pattern.cpos, &mut ws.col_max, &mut col_arg);
        ws.col_arg = col_arg;
        scan.map_err(RefactorFailure::Hard)?;
        // Dense scatter/gather work row. `marked[c] == mark + i` means
        // elimination column c is part of step i's fill pattern and its
        // work slot is live for this call.
        ws.reset(n);
        let mark = ws.stamp;
        l_vals.clear();
        l_vals.reserve(pattern.l_cols.len());
        u_vals.clear();
        u_vals.reserve(pattern.u_cols.len());
        f_vals.clear();
        f_vals.reserve(pattern.f_cols.len());

        // Running factorization-wide U maximum (for the recorded
        // pivot-growth scale) — piggybacks on the squared magnitudes the
        // gather loop computes anyway.
        let mut u_max_sqr = 0.0f64;
        let mut u_max_arg = T::ZERO;
        let mut u_squares_exact = true;

        // Loop over elimination steps; col_max is only consulted for the
        // pivot check, so enumerate() would obscure the structure.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let l_range = pattern.l_ptr[i]..pattern.l_ptr[i + 1];
            let u_range = pattern.u_ptr[i]..pattern.u_ptr[i + 1];
            let f_range = pattern.f_ptr[i]..pattern.f_ptr[i + 1];
            for &c in &pattern.l_cols[l_range.clone()] {
                ws.work[c] = T::ZERO;
                ws.marked[c] = mark + i;
            }
            for &c in &pattern.u_cols[u_range.clone()] {
                ws.work[c] = T::ZERO;
                ws.marked[c] = mark + i;
            }
            for &c in &pattern.f_cols[f_range.clone()] {
                ws.work[c] = T::ZERO;
                ws.marked[c] = mark + i;
            }
            // Scatter the input row; anything outside the pattern means the
            // structure changed and the symbolic analysis is stale.
            for (c, v) in matrix.row_entries(pattern.perm[i]) {
                let cc = pattern.cpos[c];
                if ws.marked[cc] != mark + i {
                    return Err(RefactorFailure::PatternMismatch);
                }
                ws.work[cc] = v;
            }
            // Left-looking elimination against the already-finished U rows.
            // The scatter/gather axpy over each pivot row's fill pattern is
            // the numeric hot loop of every sweep; it runs on the kernel
            // backend the symbolic analysis recorded (bit-identical between
            // backends — see `crate::kernels`).
            for t in l_range {
                let k = pattern.l_cols[t];
                let mult = ws.work[k] / u_vals[pattern.u_ptr[k]];
                l_vals.push(mult);
                if !mult.is_zero() {
                    let row = (pattern.u_ptr[k] + 1)..pattern.u_ptr[k + 1];
                    T::kernel_axpy_indexed(
                        pattern.backend,
                        mult,
                        &u_vals[row.clone()],
                        &pattern.u_cols[row],
                        &mut ws.work,
                    );
                }
            }
            // Gather the U row, scanning squared magnitudes — no `hypot`
            // per entry in this loop, which dominates the refactorization
            // after the axpy itself.
            let diag_at = u_vals.len();
            let mut row_max_sqr = 0.0f64;
            let mut row_squares_exact = true;
            for s in u_range {
                let v = ws.work[pattern.u_cols[s]];
                let m2 = v.modulus_sqr();
                if !(m2.is_normal() || v.is_zero()) {
                    row_squares_exact = false;
                    u_squares_exact = false;
                }
                if m2 > row_max_sqr {
                    row_max_sqr = m2;
                }
                if m2 > u_max_sqr {
                    u_max_sqr = m2;
                    u_max_arg = v;
                }
                u_vals.push(v);
            }
            // Off-diagonal block entries pass through untouched: elimination
            // never reaches across a block boundary, so these are the raw
            // scattered matrix values for the block back-substitution.
            for s in f_range {
                f_vals.push(ws.work[pattern.f_cols[s]]);
            }
            // Pivot quality check. The pivot of step i sits in elimination
            // column i, so its scale is col_max[i]. The fast path compares
            // squared magnitudes; when any square in this row degenerated
            // (under/overflow, or a non-finite value produced by the
            // elimination itself) it re-derives the exact moduli for this
            // row only — one `hypot` per entry of a single row, on a path
            // healthy sweeps never take.
            let pivot = u_vals[diag_at];
            let scale = ws.col_max[i] * SINGULARITY_RELATIVE;
            let scale_sqr = scale * scale;
            let degraded = if row_squares_exact && (scale_sqr.is_normal() || scale == 0.0) {
                let pivot_sqr = pivot.modulus_sqr();
                pivot_sqr == 0.0
                    || pivot_sqr <= scale_sqr
                    || pivot_sqr < REFACTOR_PIVOT_RELATIVE * REFACTOR_PIVOT_RELATIVE * row_max_sqr
            } else {
                // A non-finite pivot row means the elimination overflowed;
                // fresh pivoting may pick a healthier pivot order, so this
                // is Degraded (soft), not a hard error.
                if !pivot.is_finite() {
                    return Err(RefactorFailure::Degraded);
                }
                let pivot_mod = pivot.modulus();
                let row_max = u_vals[diag_at..]
                    .iter()
                    .map(|v| v.modulus())
                    .fold(0.0f64, f64::max);
                pivot_mod == 0.0
                    || pivot_mod <= scale
                    || pivot_mod < REFACTOR_PIVOT_RELATIVE * row_max
            };
            if degraded {
                return Err(RefactorFailure::Degraded);
            }
        }
        let a_max = ws.col_max.iter().fold(0.0f64, |a, &b| a.max(b));
        let u_max = if u_squares_exact {
            if u_max_sqr > 0.0 {
                u_max_arg.modulus()
            } else {
                0.0
            }
        } else {
            exact_max_modulus(u_vals)
        };
        Ok(RefactorScales { a_max, u_max })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// `true` when this factorization reused a precomputed pattern; `false`
    /// when it ran (or fell back to) fresh partial pivoting.
    pub fn refactored(&self) -> bool {
        self.refactored
    }

    /// Total number of stored entries in the factorization: L and U (a
    /// fill-in diagnostic) plus, for block-triangular factorizations, the
    /// raw off-diagonal block entries.
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.f_vals.len()
    }

    /// Number of diagonal blocks of the block-triangular partition (1 when
    /// the factorization ran without BTF or the pattern is irreducible).
    pub fn block_count(&self) -> usize {
        self.pattern.block_ptr.len() - 1
    }

    /// The kernel backend this factorization's numeric passes run (recorded
    /// by the pattern it was built over — see
    /// [`SymbolicLu::kernel_backend`]).
    pub fn kernel_backend(&self) -> KernelBackend {
        self.pattern.backend
    }

    /// Pivot growth `max|U| / max|A|` of this factorization (0 when the
    /// factorization is an unfilled shell) — the same conditioning smell
    /// test [`SolveQuality::pivot_growth`] reports, exposed so iterative
    /// solves preconditioned by this factorization can carry the stale
    /// factor's growth in their quality verdicts.
    pub fn pivot_growth(&self) -> f64 {
        if self.a_max_modulus > 0.0 {
            self.u_max_modulus / self.a_max_modulus
        } else {
            0.0
        }
    }

    /// Solves `A·x = b` **in place**: `rhs` holds `b` on entry and `x` on
    /// return, `work` is caller-held scratch of the same length. This is the
    /// allocation-free path for hot loops (one solve per node per frequency
    /// in the all-nodes stability scan); [`solve`](SparseLu::solve) wraps it
    /// for one-off use.
    ///
    /// ```
    /// use loopscope_sparse::{SparseLu, TripletMatrix};
    ///
    /// let mut t = TripletMatrix::<f64>::new(2, 2);
    /// t.push(0, 0, 2.0);
    /// t.push(0, 1, 1.0);
    /// t.push(1, 0, 1.0);
    /// t.push(1, 1, 3.0);
    /// let lu = SparseLu::factor(&t.to_csr())?;
    /// let mut rhs = vec![5.0, 10.0];
    /// let mut work = vec![0.0; 2];
    /// lu.solve_into(&mut rhs, &mut work)?; // rhs now holds x
    /// assert!((rhs[0] - 1.0).abs() < 1e-12 && (rhs[1] - 3.0).abs() < 1e-12);
    /// # Ok::<(), loopscope_sparse::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::RhsLength`] when `rhs.len()` or `work.len()`
    /// does not match the matrix dimension.
    ///
    /// # Panics
    ///
    /// Panics when called on an unfilled [`from_symbolic`](SparseLu::from_symbolic)
    /// shell (no successful refactorization has run yet).
    pub fn solve_into(&self, rhs: &mut [T], work: &mut [T]) -> Result<(), SolveError> {
        let p = &*self.pattern;
        assert_eq!(
            self.u_vals.len(),
            p.u_cols.len(),
            "solve on an unfactored SparseLu shell: refactor_into must succeed first"
        );
        if rhs.len() != p.n {
            return Err(SolveError::RhsLength {
                expected: p.n,
                got: rhs.len(),
            });
        }
        if work.len() != p.n {
            return Err(SolveError::RhsLength {
                expected: p.n,
                got: work.len(),
            });
        }
        // Block back-substitution, last block first: by the time block b
        // runs, every later block's solution already sits in `work`, so the
        // raw off-diagonal entries (F) fold the cross-block coupling into
        // the right-hand side before the within-block L/U sweeps. For a
        // single-block factorization the F loop is empty and this is a
        // plain forward-then-backward substitution.
        for b in (0..p.block_ptr.len() - 1).rev() {
            let (bs, be) = (p.block_ptr[b], p.block_ptr[b + 1]);
            // Forward substitution on the unit-lower factor, rows in
            // elimination order: work[i] = y[i] = r[perm[i]] − Σ L[i][k]·y[k]
            // with r = b − F·x(later blocks). The per-entry updates run on
            // the recorded kernel backend; the accumulator chain stays
            // strictly sequential on every backend (only the independent
            // products vectorize), so the result is bit-identical to the
            // scalar loop.
            for i in bs..be {
                let mut acc = rhs[p.perm[i]];
                let fr = p.f_ptr[i]..p.f_ptr[i + 1];
                acc = T::kernel_fold_sub_indexed(
                    p.backend,
                    acc,
                    &self.f_vals[fr.clone()],
                    &p.f_cols[fr],
                    work,
                );
                let lr = p.l_ptr[i]..p.l_ptr[i + 1];
                acc = T::kernel_fold_sub_indexed(
                    p.backend,
                    acc,
                    &self.l_vals[lr.clone()],
                    &p.l_cols[lr],
                    work,
                );
                work[i] = acc;
            }
            // Back substitution on U (diagonal first in each row), in place
            // over the work row: slots above i already hold solutions.
            for i in (bs..be).rev() {
                let start = p.u_ptr[i];
                let ur = (start + 1)..p.u_ptr[i + 1];
                let acc = T::kernel_fold_sub_indexed(
                    p.backend,
                    work[i],
                    &self.u_vals[ur.clone()],
                    &p.u_cols[ur],
                    work,
                );
                work[i] = acc / self.u_vals[start];
            }
        }
        // Undo the column permutation: elimination slot i is original
        // unknown cperm[i].
        for i in 0..p.n {
            rhs[p.cperm[i]] = work[i];
        }
        Ok(())
    }

    /// Solves `A·X = B` for `k` right-hand sides **in one L/U traversal per
    /// block**, in place over a column-major panel: `rhs` holds the `k`
    /// columns of `B` back to back (`rhs[j·n..(j+1)·n]` is column `j`) on
    /// entry and the solution columns on return; `work` is caller-held
    /// scratch of the same `k·n` length.
    ///
    /// Per column the arithmetic — every product, subtraction and division,
    /// in the same order — is **identical** to a
    /// [`solve_into`](SparseLu::solve_into) call on that column alone, so
    /// the results are bitwise equal to `k` independent solves at any panel
    /// width. What the blocking changes is the *traversal*: the L/U index
    /// structure is walked once per factor row instead of once per factor
    /// row per right-hand side, and each factor value loaded once streams
    /// over `k` contiguous work slots. That amortization is what makes the
    /// all-nodes stability scan's one-injection-per-node inner loop cheap
    /// on large circuits.
    ///
    /// Performs no heap allocation.
    ///
    /// ```
    /// use loopscope_sparse::{SparseLu, TripletMatrix};
    ///
    /// let mut t = TripletMatrix::<f64>::new(2, 2);
    /// t.push(0, 0, 2.0);
    /// t.push(0, 1, 1.0);
    /// t.push(1, 0, 1.0);
    /// t.push(1, 1, 3.0);
    /// let lu = SparseLu::factor(&t.to_csr())?;
    /// // Two right-hand sides, column-major: [5, 10] and [3, 4].
    /// let mut panel = vec![5.0, 10.0, 3.0, 4.0];
    /// let mut work = vec![0.0; 4];
    /// lu.solve_block_into(&mut panel, 2, &mut work)?;
    /// assert!((panel[0] - 1.0).abs() < 1e-12 && (panel[1] - 3.0).abs() < 1e-12);
    /// assert!((panel[2] - 1.0).abs() < 1e-12 && (panel[3] - 1.0).abs() < 1e-12);
    /// # Ok::<(), loopscope_sparse::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::RhsLength`] when `rhs.len()` or `work.len()`
    /// differs from `k` times the matrix dimension.
    ///
    /// # Panics
    ///
    /// Panics when called on an unfilled
    /// [`from_symbolic`](SparseLu::from_symbolic) shell (no successful
    /// refactorization has run yet).
    pub fn solve_block_into(
        &self,
        rhs: &mut [T],
        k: usize,
        work: &mut [T],
    ) -> Result<(), SolveError> {
        let p = &*self.pattern;
        assert_eq!(
            self.u_vals.len(),
            p.u_cols.len(),
            "solve on an unfactored SparseLu shell: refactor_into must succeed first"
        );
        let expected = p.n * k;
        if rhs.len() != expected {
            return Err(SolveError::RhsLength {
                expected,
                got: rhs.len(),
            });
        }
        if work.len() != expected {
            return Err(SolveError::RhsLength {
                expected,
                got: work.len(),
            });
        }
        // The work panel is interleaved — the k slots of elimination row i
        // are contiguous at i·k — so the inner per-column loops stream over
        // adjacent memory while the factor entry (index + value) is loaded
        // exactly once. Each k-wide update runs as one panel kernel on the
        // recorded backend (lane = RHS column, so per-column operation
        // order — and therefore the bitwise guarantee against `solve_into`
        // — is untouched). F and U sources live in later elimination rows
        // than the destination, L sources in earlier ones, which is what
        // makes the borrow splits below valid.
        let backend = p.backend;
        for b in (0..p.block_ptr.len() - 1).rev() {
            let (bs, be) = (p.block_ptr[b], p.block_ptr[b + 1]);
            for i in bs..be {
                let pr = p.perm[i];
                let row = i * k;
                for j in 0..k {
                    work[row + j] = rhs[j * p.n + pr];
                }
                {
                    // Off-diagonal block entries: sources in later blocks.
                    let (head, tail) = work.split_at_mut(row + k);
                    let dst = &mut head[row..];
                    for t in p.f_ptr[i]..p.f_ptr[i + 1] {
                        let src = p.f_cols[t] * k - (row + k);
                        T::kernel_panel_axpy(backend, self.f_vals[t], &tail[src..src + k], dst);
                    }
                }
                {
                    // L entries: sources in earlier elimination rows.
                    let (head, tail) = work.split_at_mut(row);
                    let dst = &mut tail[..k];
                    for t in p.l_ptr[i]..p.l_ptr[i + 1] {
                        let src = p.l_cols[t] * k;
                        T::kernel_panel_axpy(backend, self.l_vals[t], &head[src..src + k], dst);
                    }
                }
            }
            for i in (bs..be).rev() {
                let start = p.u_ptr[i];
                let row = i * k;
                let (head, tail) = work.split_at_mut(row + k);
                let dst = &mut head[row..];
                for t in (start + 1)..p.u_ptr[i + 1] {
                    let src = p.u_cols[t] * k - (row + k);
                    T::kernel_panel_axpy(backend, self.u_vals[t], &tail[src..src + k], dst);
                }
                T::kernel_panel_div(backend, self.u_vals[start], dst);
            }
        }
        for i in 0..p.n {
            let c = p.cperm[i];
            let row = i * k;
            for j in 0..k {
                rhs[j * p.n + c] = work[row + j];
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` using the stored factorization, returning a freshly
    /// allocated solution vector.
    ///
    /// Convenience wrapper over [`solve_into`](SparseLu::solve_into) for
    /// one-off solves; hot loops should hold their own buffers and call
    /// `solve_into` directly (it performs no heap allocation).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::RhsLength`] when `b.len()` does not match the
    /// matrix dimension.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, SolveError> {
        if b.len() != self.pattern.n {
            return Err(SolveError::RhsLength {
                expected: self.pattern.n,
                got: b.len(),
            });
        }
        let mut rhs = b.to_vec();
        let mut work = vec![T::ZERO; self.pattern.n];
        self.solve_into(&mut rhs, &mut work)?;
        Ok(rhs)
    }

    /// Solves `A·x = b` with **residual verification and iterative
    /// refinement**, in place: `rhs` holds `b` on entry and `x` on return.
    ///
    /// After the direct [`solve_into`](SparseLu::solve_into) the true
    /// residual `r = b − A·x` is computed through the caller-supplied
    /// original matrix (`matrix` must be the matrix this factorization was
    /// computed from). While the normwise backward error
    /// `‖r‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` exceeds [`REFINE_BACKWARD_TOLERANCE`]
    /// and fewer than [`REFINE_MAX_STEPS`] corrections have been applied,
    /// the correction `A·δ = r` is solved through the same factors and
    /// folded into `x`. A correction that fails to shrink `‖r‖∞` is rolled
    /// back (the previous iterate is restored bit-for-bit), so the returned
    /// solution's residual is **never worse** than the direct solve's.
    ///
    /// Healthy factorizations pass the tolerance immediately
    /// (`refinement_steps == 0`) and pay only one residual pass on top of
    /// the plain solve; the entry-magnitude work of that pass uses
    /// [`Scalar::modulus_l1`] norms, so there is no `hypot` on this path.
    /// Performs no heap allocation once `ws` has reached matrix dimension.
    ///
    /// The returned [`SolveQuality`] reports the final residual norm,
    /// backward error, number of corrections and the factorization's
    /// pivot-growth factor; callers escalate on
    /// [`converged`](SolveQuality::converged)` == false` (see the retry
    /// ladder in `loopscope-spice`).
    ///
    /// ```
    /// use loopscope_sparse::{RefineWorkspace, SparseLu, TripletMatrix};
    ///
    /// let mut t = TripletMatrix::<f64>::new(2, 2);
    /// t.push(0, 0, 2.0);
    /// t.push(0, 1, 1.0);
    /// t.push(1, 0, 1.0);
    /// t.push(1, 1, 3.0);
    /// let a = t.to_csr();
    /// let lu = SparseLu::factor(&a)?;
    /// let mut rhs = vec![5.0, 10.0];
    /// let mut ws = RefineWorkspace::for_dim(2);
    /// let quality = lu.solve_refined_into(&a, &mut rhs, &mut ws)?;
    /// assert!(quality.converged);
    /// assert_eq!(quality.refinement_steps, 0);
    /// assert!((rhs[0] - 1.0).abs() < 1e-12 && (rhs[1] - 3.0).abs() < 1e-12);
    /// # Ok::<(), loopscope_sparse::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] when `matrix` does not match the
    /// factorization dimension and [`SolveError::RhsLength`] for a
    /// mismatched `rhs`.
    ///
    /// # Panics
    ///
    /// Panics when called on an unfilled
    /// [`from_symbolic`](SparseLu::from_symbolic) shell, like
    /// [`solve_into`](SparseLu::solve_into).
    pub fn solve_refined_into(
        &self,
        matrix: &CsrMatrix<T>,
        rhs: &mut [T],
        ws: &mut RefineWorkspace<T>,
    ) -> Result<SolveQuality, SolveError> {
        let n = self.pattern.n;
        if matrix.rows() != n || matrix.cols() != n {
            return Err(SolveError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        if rhs.len() != n {
            return Err(SolveError::RhsLength {
                expected: n,
                got: rhs.len(),
            });
        }
        ws.reset(n);
        let norm_b = inf_norm(rhs);
        ws.x.copy_from_slice(rhs);
        self.solve_into(&mut ws.x, &mut ws.work)?;
        // First residual pass also accumulates ‖A‖∞ (max row sum of l1
        // moduli) in the same traversal — the denominator scale of the
        // backward error.
        let mut norm_a = 0.0f64;
        residual_into(matrix, &ws.x, rhs, &mut ws.residual, Some(&mut norm_a));
        let mut norm_r = inf_norm(&ws.residual);
        let mut steps = 0usize;
        let mut berr = backward_error(norm_r, norm_a, inf_norm(&ws.x), norm_b);
        while berr > REFINE_BACKWARD_TOLERANCE && steps < REFINE_MAX_STEPS {
            ws.correction.copy_from_slice(&ws.residual);
            self.solve_into(&mut ws.correction, &mut ws.work)?;
            ws.x_prev.copy_from_slice(&ws.x);
            for (xi, di) in ws.x.iter_mut().zip(&ws.correction) {
                *xi += *di;
            }
            residual_into(matrix, &ws.x, rhs, &mut ws.residual, None);
            let new_norm_r = inf_norm(&ws.residual);
            // `inf_norm` maps non-finite entries to +∞, so a diverging or
            // NaN-polluted update also lands in the rollback branch.
            if new_norm_r >= norm_r {
                ws.x.copy_from_slice(&ws.x_prev);
                break;
            }
            steps += 1;
            norm_r = new_norm_r;
            berr = backward_error(norm_r, norm_a, inf_norm(&ws.x), norm_b);
        }
        rhs.copy_from_slice(&ws.x);
        let pivot_growth = if self.a_max_modulus > 0.0 {
            self.u_max_modulus / self.a_max_modulus
        } else {
            0.0
        };
        Ok(SolveQuality {
            residual_norm: norm_r,
            backward_error: berr,
            refinement_steps: steps,
            pivot_growth,
            converged: berr <= REFINE_BACKWARD_TOLERANCE,
        })
    }

    /// Estimates the 1-norm condition number `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁` of the
    /// factored matrix using the Hager/Higham power iteration on `A⁻¹`
    /// (at most five forward/adjoint solve pairs through the existing
    /// factors — never a dense inverse), cross-checked against Higham's
    /// alternating-sign probe so the estimate cannot collapse on
    /// adversarial sign patterns. The result is a **lower bound** on the
    /// true κ₁, in practice within a small factor of it.
    ///
    /// `matrix` must be the matrix this factorization was computed from
    /// (its exact 1-norm anchors the estimate). This is a diagnostic path:
    /// it allocates its own scratch and is priced for once-per-sweep use,
    /// not per solve.
    ///
    /// ```
    /// use loopscope_sparse::{SparseLu, TripletMatrix};
    ///
    /// let mut t = TripletMatrix::<f64>::new(2, 2);
    /// t.push(0, 0, 1.0);
    /// t.push(1, 1, 1.0e-8);
    /// let a = t.to_csr();
    /// let lu = SparseLu::factor(&a)?;
    /// let kappa = lu.condition_estimate(&a)?;
    /// assert!((kappa - 1.0e8).abs() / 1.0e8 < 1e-6);
    /// # Ok::<(), loopscope_sparse::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] when `matrix` does not match the
    /// factorization dimension.
    ///
    /// # Panics
    ///
    /// Panics when called on an unfilled
    /// [`from_symbolic`](SparseLu::from_symbolic) shell.
    pub fn condition_estimate(&self, matrix: &CsrMatrix<T>) -> Result<f64, SolveError> {
        let n = self.pattern.n;
        if matrix.rows() != n || matrix.cols() != n {
            return Err(SolveError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        if n == 0 {
            return Ok(0.0);
        }
        // Exact ‖A‖₁: max column sum of moduli. One-off, so the exact
        // modulus is fine here.
        let mut col_sums = vec![0.0f64; n];
        for (_, c, v) in matrix.iter() {
            col_sums[c] += v.modulus();
        }
        let norm_a = col_sums.iter().fold(0.0f64, |a, &b| a.max(b));
        if norm_a == 0.0 {
            return Ok(f64::INFINITY);
        }

        let mut x: Vec<T> = vec![T::from_f64(1.0 / n as f64); n];
        let mut work = vec![T::ZERO; n];
        let mut y = vec![T::ZERO; n];
        let mut est = 0.0f64;
        let mut prev_j = usize::MAX;
        // Hager's iteration: maximize ‖A⁻¹x‖₁ over the unit 1-norm ball by
        // following the subgradient (an adjoint solve per step). Converges
        // in 2-3 iterations in practice; 5 is the customary cap.
        for _ in 0..5 {
            y.copy_from_slice(&x);
            self.solve_into(&mut y, &mut work)?;
            est = est.max(one_norm(&y));
            // ξ = sign(y), then z = A⁻ᴴ·ξ tells us which unit vector would
            // have produced a larger ‖A⁻¹·‖₁.
            for (zi, yi) in x.iter_mut().zip(&y) {
                let m = yi.modulus();
                *zi = if m > 0.0 {
                    *yi * T::from_f64(1.0 / m)
                } else {
                    T::ONE
                };
            }
            self.solve_adjoint_into(&mut x, &mut work);
            let (mut j, mut max_mod) = (0usize, 0.0f64);
            for (i, zi) in x.iter().enumerate() {
                let m = zi.modulus();
                if m > max_mod {
                    max_mod = m;
                    j = i;
                }
            }
            if j == prev_j || !max_mod.is_finite() {
                break;
            }
            prev_j = j;
            // Next probe: the unit vector the subgradient points at.
            for xi in x.iter_mut() {
                *xi = T::ZERO;
            }
            x[j] = T::ONE;
        }
        // Higham's safeguard probe: an alternating-sign right-hand side
        // that defeats the sign patterns Hager's iteration can stall on.
        for (i, xi) in x.iter_mut().enumerate() {
            let v = 1.0 + i as f64 / (n as f64 - 1.0).max(1.0);
            *xi = T::from_f64(if i % 2 == 0 { v } else { -v });
        }
        self.solve_into(&mut x, &mut work)?;
        est = est.max(2.0 * one_norm(&x) / (3.0 * n as f64));
        Ok(norm_a * est)
    }

    /// Solves `Aᴴ·z = w` in place through the stored factors (`rhs` holds
    /// `w` on entry and `z` on return): the adjoint substitutions run the
    /// recorded pattern in the reverse roles — `Uᴴ` is a forward sweep,
    /// `Lᴴ` a backward one, and the BTF blocks are visited in ascending
    /// order with each block's off-diagonal entries conjugate-scattered
    /// into the later blocks it feeds. Used by the condition estimator.
    fn solve_adjoint_into(&self, rhs: &mut [T], work: &mut [T]) {
        let p = &*self.pattern;
        assert_eq!(
            self.u_vals.len(),
            p.u_cols.len(),
            "solve on an unfactored SparseLu shell: refactor_into must succeed first"
        );
        debug_assert_eq!(rhs.len(), p.n);
        debug_assert_eq!(work.len(), p.n);
        // Permute into elimination coordinates: w̃[j] = w[cperm[j]], from
        // Σᵢ conj(A'[i][j])·z̃[i] = w[cperm[j]] with A'[i][j] = A[perm[i]][cperm[j]].
        for j in 0..p.n {
            work[j] = rhs[p.cperm[j]];
        }
        for b in 0..p.block_ptr.len() - 1 {
            let (bs, be) = (p.block_ptr[b], p.block_ptr[b + 1]);
            // (L·U)ᴴ = Uᴴ·Lᴴ, so Uᴴ·y = w̃ runs first: Uᴴ is lower
            // triangular, solved forward, scattering each finished y[i]
            // into the later rows its U entries touch.
            for i in bs..be {
                let start = p.u_ptr[i];
                let yi = work[i] / Scalar::conj(self.u_vals[start]);
                work[i] = yi;
                if !yi.is_zero() {
                    for t in (start + 1)..p.u_ptr[i + 1] {
                        work[p.u_cols[t]] -= Scalar::conj(self.u_vals[t]) * yi;
                    }
                }
            }
            // Lᴴ·z̃ = y: upper triangular with unit diagonal, solved
            // backward; row i's L entries scatter into the earlier rows.
            for i in (bs..be).rev() {
                let zi = work[i];
                if !zi.is_zero() {
                    for t in p.l_ptr[i]..p.l_ptr[i + 1] {
                        work[p.l_cols[t]] -= Scalar::conj(self.l_vals[t]) * zi;
                    }
                }
            }
            // The off-diagonal entries of this block's rows couple into
            // *later* blocks' equations under the adjoint: fold them into
            // the pending right-hand sides before those blocks run.
            for i in bs..be {
                let zi = work[i];
                if !zi.is_zero() {
                    for t in p.f_ptr[i]..p.f_ptr[i + 1] {
                        work[p.f_cols[t]] -= Scalar::conj(self.f_vals[t]) * zi;
                    }
                }
            }
        }
        // Undo the row permutation: z[perm[i]] = z̃[i].
        for i in 0..p.n {
            rhs[p.perm[i]] = work[i];
        }
    }
}

/// Quality report of a residual-verified solve
/// ([`SparseLu::solve_refined_into`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveQuality {
    /// ∞-norm of the final residual `b − A·x`.
    pub residual_norm: f64,
    /// Normwise backward error `‖r‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` of the returned
    /// solution (entry magnitudes via [`Scalar::modulus_l1`], so within √2
    /// of the Euclidean-modulus value). `0.0` for an exact solve,
    /// infinite when the solution or residual is non-finite.
    pub backward_error: f64,
    /// Number of refinement corrections folded into the solution (`0` when
    /// the direct solve already passed the tolerance).
    pub refinement_steps: usize,
    /// Pivot growth `max|U| / max|A|` of the factorization — a cheap
    /// conditioning smell test: growth far above 1 means elimination
    /// amplified entries and the factors deserve suspicion even when the
    /// backward error passes.
    pub pivot_growth: f64,
    /// Whether the backward error reached [`REFINE_BACKWARD_TOLERANCE`].
    /// `false` is the escalation signal of the retry ladder in
    /// `loopscope-spice`.
    pub converged: bool,
}

/// Reusable scratch for [`SparseLu::solve_refined_into`]: the solution
/// iterate, its rollback copy, the residual/correction vector and the
/// substitution work row. Create one next to the factorization (or use
/// [`RefineWorkspace::for_dim`] to pre-size) and pass it to every refined
/// solve; after the buffers reach matrix dimension no further heap
/// allocation happens.
#[derive(Debug, Clone)]
pub struct RefineWorkspace<T: Scalar> {
    x: Vec<T>,
    x_prev: Vec<T>,
    residual: Vec<T>,
    correction: Vec<T>,
    work: Vec<T>,
}

impl<T: Scalar> Default for RefineWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> RefineWorkspace<T> {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            x: Vec::new(),
            x_prev: Vec::new(),
            residual: Vec::new(),
            correction: Vec::new(),
            work: Vec::new(),
        }
    }

    /// Creates a workspace pre-sized for matrices of dimension `n`, so even
    /// the first refined solve over it performs no heap allocation.
    pub fn for_dim(n: usize) -> Self {
        Self {
            x: vec![T::ZERO; n],
            x_prev: vec![T::ZERO; n],
            residual: vec![T::ZERO; n],
            correction: vec![T::ZERO; n],
            work: vec![T::ZERO; n],
        }
    }

    /// Sizes every buffer to dimension `n` (no-op once they match).
    fn reset(&mut self, n: usize) {
        for buf in [
            &mut self.x,
            &mut self.x_prev,
            &mut self.residual,
            &mut self.correction,
            &mut self.work,
        ] {
            if buf.len() != n {
                buf.clear();
                buf.resize(n, T::ZERO);
            }
        }
    }
}

/// ∞-norm of a vector: squared-magnitude scan with one square root on the
/// winner; exact fallback when squares degenerate, and +∞ as soon as any
/// component is non-finite (a poisoned norm must fail the tolerance, not
/// vanish from the comparison like NaN would).
pub(crate) fn inf_norm<T: Scalar>(v: &[T]) -> f64 {
    let mut max_sqr = 0.0f64;
    let mut exact = true;
    for &x in v {
        let m2 = x.modulus_sqr();
        if !(m2.is_normal() || x.is_zero()) {
            exact = false;
        }
        if m2 > max_sqr {
            max_sqr = m2;
        }
    }
    if exact {
        return max_sqr.sqrt();
    }
    let mut max = 0.0f64;
    for &x in v {
        if !x.is_finite() {
            return f64::INFINITY;
        }
        let m = x.modulus();
        if m > max {
            max = m;
        }
    }
    max
}

/// 1-norm of a vector (sum of exact moduli) — condition-estimator path.
fn one_norm<T: Scalar>(v: &[T]) -> f64 {
    v.iter().map(|x| x.modulus()).sum()
}

/// `r = b − A·x`. When `norm_a` is supplied, the ∞-norm of `A` (max row
/// sum of [`Scalar::modulus_l1`] entry magnitudes) is accumulated in the
/// same cache pass.
fn residual_into<T: Scalar>(
    matrix: &CsrMatrix<T>,
    x: &[T],
    b: &[T],
    r: &mut [T],
    mut norm_a: Option<&mut f64>,
) {
    for row in 0..matrix.rows() {
        let mut acc = b[row];
        match norm_a.as_deref_mut() {
            Some(na) => {
                let mut srow = 0.0f64;
                for (c, v) in matrix.row_entries(row) {
                    acc -= v * x[c];
                    srow += v.modulus_l1();
                }
                if srow > *na {
                    *na = srow;
                }
            }
            None => {
                for (c, v) in matrix.row_entries(row) {
                    acc -= v * x[c];
                }
            }
        }
        r[row] = acc;
    }
}

/// Normwise backward error `‖r‖ / (‖A‖·‖x‖ + ‖b‖)`, defined as `0` for an
/// exactly zero residual and `+∞` whenever any ingredient is non-finite —
/// a huge-but-finite `x` must not drive the quotient to a spurious pass.
pub(crate) fn backward_error(norm_r: f64, norm_a: f64, norm_x: f64, norm_b: f64) -> f64 {
    if norm_r == 0.0 {
        return 0.0;
    }
    let denom = norm_a * norm_x + norm_b;
    if !norm_r.is_finite() || !denom.is_finite() || denom == 0.0 {
        return f64::INFINITY;
    }
    norm_r / denom
}

/// The factorization [`solve_once`] runs: minimum-degree ordered with
/// threshold pivoting, so even one-shot callers get the fill-reducing path
/// (its fill advantage is asserted by the `solve_once_*` unit tests below).
fn fill_reducing_factor<T: Scalar>(matrix: &CsrMatrix<T>) -> Result<SparseLu<T>, SolveError> {
    if matrix.cols() != matrix.rows() {
        return Err(SolveError::NotSquare {
            rows: matrix.rows(),
            cols: matrix.cols(),
        });
    }
    let order = crate::ordering::min_degree_order(matrix);
    SparseLu::factor_ordered(matrix, &order)
}

/// Convenience helper: factor `matrix` and solve for a single right-hand
/// side. The factorization runs the same fill-reducing path the cached
/// solvers use — a minimum-degree order with KLU-style threshold pivoting —
/// not the fill-oblivious natural-order pivoting.
///
/// # Errors
///
/// Propagates any [`SolveError`] from factorization or solve.
pub fn solve_once<T: Scalar>(matrix: &CsrMatrix<T>, b: &[T]) -> Result<Vec<T>, SolveError> {
    fill_reducing_factor(matrix)?.solve(b)
}

/// Normwise backward error `‖b − A·x‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` of a candidate
/// solution `x` — **the exact residual test** [`SparseLu::solve_refined_into`]
/// runs before its first refinement step (same norms, same non-finite
/// handling: `0` for an exactly zero residual, `+∞` whenever any ingredient
/// is non-finite). Exposed so batched drivers can apply the identical
/// accept/escalate rule to solutions produced outside the refined path: a
/// value `≤` [`REFINE_BACKWARD_TOLERANCE`] is precisely the condition under
/// which a refined solve would have returned the candidate unchanged.
///
/// `residual` is caller-held scratch of the matrix dimension; on return it
/// holds `b − A·x`. Performs no heap allocation.
///
/// # Panics
///
/// Panics when `x`, `b` or `residual` are shorter than the matrix row count.
pub fn normwise_backward_error<T: Scalar>(
    matrix: &CsrMatrix<T>,
    x: &[T],
    b: &[T],
    residual: &mut [T],
) -> f64 {
    let mut norm_a = 0.0f64;
    residual_into(matrix, x, b, residual, Some(&mut norm_a));
    backward_error(inf_norm(residual), norm_a, inf_norm(x), inf_norm(b))
}

/// Per-lane outcome of a [`BatchedLu::refactor`] call.
///
/// Lanes fail **independently**: a degraded pivot or stale pattern in one
/// variant never aborts the batch, it only marks that lane so the driver can
/// rerun the variant through a scalar fallback (the same policy
/// [`SparseLu::refactor_into`] applies by re-pivoting — batched lanes share
/// one pattern, so re-pivoting is necessarily per-lane and out-of-band).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchLaneStatus {
    /// The lane refactored cleanly; its solution lanes are valid.
    Factored,
    /// A pivot fell below the numeric quality threshold for this lane's
    /// values (the batched analogue of the soft degradation that makes
    /// [`SparseLu::refactor_into`] fall back to fresh pivoting).
    Degraded,
    /// This lane's matrix has an entry outside the shared fill pattern; the
    /// symbolic analysis is stale for it.
    PatternMismatch,
    /// A hard per-lane error (dimension mismatch or non-finite stamp).
    Failed(SolveError),
}

impl BatchLaneStatus {
    /// `true` for [`BatchLaneStatus::Factored`].
    pub fn is_factored(self) -> bool {
        matches!(self, BatchLaneStatus::Factored)
    }
}

/// A batched numeric LU over `width` **independent matrices sharing one
/// symbolic analysis** — the variant axis of Monte Carlo / corner sweeps.
///
/// All `width` factorizations are stored structure-of-arrays: the values of
/// pattern slot `s` for every lane sit contiguously at `s·width..(s+1)·width`.
/// Because every lane shares the fill pattern, one index stream drives
/// `width` lanes of arithmetic through the `kernel_lane_*` primitives of
/// [`crate::kernels`] — and because those primitives perform per-lane exactly
/// the scalar reference operations in the scalar order (no FMA, no
/// reassociation, no cross-lane math), **each lane's factors and solutions
/// are bitwise identical to a scalar [`SparseLu::refactor_into`] /
/// [`SparseLu::solve_into`] run on that lane's matrix alone**, at any batch
/// width and on every kernel backend. `width == 1` is therefore not a special
/// case but the serial reference the determinism suite compares against.
///
/// The refactorization mirrors the scalar pass lane-by-lane, including the
/// pivot-quality rule: a lane whose pivot degrades (or whose matrix has
/// drifted off the pattern) is marked in [`statuses`](BatchedLu::statuses)
/// and its remaining values are unspecified, while the other lanes complete
/// normally. After construction no method performs heap allocation.
#[derive(Debug, Clone)]
pub struct BatchedLu<T: Scalar> {
    pattern: Arc<LuPattern>,
    width: usize,
    /// Lane-interleaved factor values: slot `s`, lane `w` at `s·width + w`.
    l_vals: Vec<T>,
    u_vals: Vec<T>,
    f_vals: Vec<T>,
    /// Lane-interleaved dense scatter row (`n·width`).
    work: Vec<T>,
    /// Shared column markers — the fill pattern is lane-invariant, so one
    /// marker array serves every lane (same scheme as [`LuWorkspace`]).
    marked: Vec<usize>,
    stamp: usize,
    /// Lane-interleaved per-elimination-column scales (`n·width`).
    col_max: Vec<f64>,
    /// Per-lane scratch for the column scan (dimension `n` each).
    col_scratch: Vec<f64>,
    col_arg: Vec<T>,
    /// Per-lane outcome of the most recent [`refactor`](BatchedLu::refactor).
    statuses: Vec<BatchLaneStatus>,
    /// Per-lane liveness during a refactor pass (scratch).
    live: Vec<bool>,
    /// `true` once a refactor call has completed with ≥ 1 factored lane.
    factored: bool,
}

impl<T: Scalar> BatchedLu<T> {
    /// Creates a batched factorization shell over `symbolic` with `width`
    /// variant lanes. All buffers are allocated here;
    /// [`refactor`](BatchedLu::refactor) and
    /// [`solve_into`](BatchedLu::solve_into) are allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero.
    pub fn new(symbolic: &SymbolicLu, width: usize) -> Self {
        assert!(width > 0, "batch width must be at least 1");
        let p = Arc::clone(&symbolic.pattern);
        let n = p.n;
        Self {
            l_vals: vec![T::ZERO; p.l_cols.len() * width],
            u_vals: vec![T::ZERO; p.u_cols.len() * width],
            f_vals: vec![T::ZERO; p.f_cols.len() * width],
            work: vec![T::ZERO; n * width],
            marked: vec![usize::MAX; n],
            stamp: 0,
            col_max: vec![0.0; n * width],
            col_scratch: vec![0.0; n],
            col_arg: vec![T::ZERO; n],
            statuses: Vec::with_capacity(width),
            live: vec![false; width],
            factored: false,
            pattern: p,
            width,
        }
    }

    /// Number of variant lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// Per-lane outcome of the most recent [`refactor`](BatchedLu::refactor)
    /// call (empty before the first call). One entry per supplied matrix.
    pub fn statuses(&self) -> &[BatchLaneStatus] {
        &self.statuses
    }

    /// Refactors up to `width` matrices over the shared pattern in one
    /// batched pass, returning the per-lane outcomes. `matrices` may be
    /// shorter than the width (a ragged final group): the surplus lanes
    /// simply carry unspecified values.
    ///
    /// Per lane, every arithmetic operation — scatter, elimination axpy,
    /// pivot test — is performed in exactly the order of a scalar
    /// [`SparseLu::refactor_into`] on that matrix alone, so a
    /// [`BatchLaneStatus::Factored`] lane holds bitwise-identical factor
    /// values. Failed lanes (degraded pivot, pattern drift, non-finite
    /// stamp, dimension mismatch) are reported in their status and never
    /// disturb the other lanes.
    ///
    /// # Panics
    ///
    /// Panics when `matrices` is empty or longer than the width.
    pub fn refactor(&mut self, matrices: &[CsrMatrix<T>]) -> &[BatchLaneStatus] {
        let p = Arc::clone(&self.pattern);
        let n = p.n;
        let wdt = self.width;
        let m = matrices.len();
        assert!(
            m >= 1 && m <= wdt,
            "batch of {m} matrices does not fit width {wdt}"
        );
        self.statuses.clear();
        self.statuses.resize(m, BatchLaneStatus::Factored);
        for (w, lane_live) in self.live.iter_mut().enumerate() {
            *lane_live = w < m;
        }
        // Per-lane column scales (the hard up-front checks of the scalar
        // pass): a bad lane is dead from the start, the rest proceed.
        for (w, matrix) in matrices.iter().enumerate() {
            if matrix.rows() != n || matrix.cols() != n {
                self.statuses[w] = BatchLaneStatus::Failed(SolveError::NotSquare {
                    rows: matrix.rows(),
                    cols: matrix.cols(),
                });
                self.live[w] = false;
                continue;
            }
            match column_max_moduli_into(matrix, &p.cpos, &mut self.col_scratch, &mut self.col_arg)
            {
                Ok(()) => {
                    for (i, &s) in self.col_scratch.iter().enumerate() {
                        self.col_max[i * wdt + w] = s;
                    }
                }
                Err(e) => {
                    self.statuses[w] = BatchLaneStatus::Failed(e);
                    self.live[w] = false;
                }
            }
        }
        // Marker reset, same O(1) stamp scheme as `LuWorkspace::reset`.
        self.stamp += n;
        let mark = self.stamp;
        let backend = p.backend;

        for i in 0..n {
            let l_range = p.l_ptr[i]..p.l_ptr[i + 1];
            let u_range = p.u_ptr[i]..p.u_ptr[i + 1];
            let f_range = p.f_ptr[i]..p.f_ptr[i + 1];
            for &c in p.l_cols[l_range.clone()]
                .iter()
                .chain(&p.u_cols[u_range.clone()])
                .chain(&p.f_cols[f_range.clone()])
            {
                self.work[c * wdt..(c + 1) * wdt].fill(T::ZERO);
                self.marked[c] = mark + i;
            }
            // Per-lane scatter of the pivot row. A stray entry means the
            // pattern is stale *for that lane*; the lane dies, the write is
            // skipped (lane slots are private, so nothing else is touched).
            for (w, matrix) in matrices.iter().enumerate() {
                if !self.live[w] {
                    continue;
                }
                for (c, v) in matrix.row_entries(p.perm[i]) {
                    let cc = p.cpos[c];
                    if self.marked[cc] != mark + i {
                        self.statuses[w] = BatchLaneStatus::PatternMismatch;
                        self.live[w] = false;
                        break;
                    }
                    self.work[cc * wdt + w] = v;
                }
            }
            // Left-looking elimination, all lanes per pattern entry: the
            // multiplier divide runs as one lane_div (per-lane scalar Div),
            // the U-row axpy as one lane_mul_sub per fill slot — unless any
            // lane's multiplier is exactly zero, in which case the per-lane
            // loop preserves the scalar path's `is_zero` skip bit-for-bit
            // (subtracting an exact-zero product can still flip a signed
            // zero, and 0·∞ would manufacture NaN).
            for t in l_range.clone() {
                let k = p.l_cols[t];
                let u_diag = p.u_ptr[k] * wdt;
                let lane = t * wdt;
                self.l_vals[lane..lane + wdt].copy_from_slice(&self.work[k * wdt..(k + 1) * wdt]);
                T::kernel_lane_div(
                    backend,
                    &self.u_vals[u_diag..u_diag + wdt],
                    &mut self.l_vals[lane..lane + wdt],
                );
                let mults = &self.l_vals[lane..lane + wdt];
                let all_nonzero = mults.iter().all(|mlt| !mlt.is_zero());
                let row = (p.u_ptr[k] + 1)..p.u_ptr[k + 1];
                if all_nonzero {
                    for s in row {
                        let c = p.u_cols[s] * wdt;
                        T::kernel_lane_mul_sub(
                            backend,
                            &self.l_vals[lane..lane + wdt],
                            &self.u_vals[s * wdt..(s + 1) * wdt],
                            &mut self.work[c..c + wdt],
                        );
                    }
                } else {
                    for s in row {
                        let c = p.u_cols[s] * wdt;
                        for w in 0..wdt {
                            let mult = self.l_vals[lane + w];
                            if !mult.is_zero() {
                                self.work[c + w] -= mult * self.u_vals[s * wdt + w];
                            }
                        }
                    }
                }
            }
            // Gather the U and F rows for every lane.
            for s in u_range.clone() {
                let c = p.u_cols[s] * wdt;
                self.u_vals[s * wdt..(s + 1) * wdt].copy_from_slice(&self.work[c..c + wdt]);
            }
            for t in f_range {
                let c = p.f_cols[t] * wdt;
                self.f_vals[t * wdt..(t + 1) * wdt].copy_from_slice(&self.work[c..c + wdt]);
            }
            // Per-lane pivot quality, the exact scalar rule (squared-
            // magnitude fast path, exact-modulus fallback when any square in
            // the lane's row degenerated). A lane keeps only its *first*
            // failure: the scalar pass would have stopped there.
            let diag_at = p.u_ptr[i] * wdt;
            for w in 0..wdt {
                if !self.live[w] {
                    continue;
                }
                let mut row_max_sqr = 0.0f64;
                let mut row_squares_exact = true;
                for s in u_range.clone() {
                    let v = self.u_vals[s * wdt + w];
                    let m2 = v.modulus_sqr();
                    if !(m2.is_normal() || v.is_zero()) {
                        row_squares_exact = false;
                    }
                    if m2 > row_max_sqr {
                        row_max_sqr = m2;
                    }
                }
                let pivot = self.u_vals[diag_at + w];
                let scale = self.col_max[i * wdt + w] * SINGULARITY_RELATIVE;
                let scale_sqr = scale * scale;
                let degraded = if row_squares_exact && (scale_sqr.is_normal() || scale == 0.0) {
                    let pivot_sqr = pivot.modulus_sqr();
                    pivot_sqr == 0.0
                        || pivot_sqr <= scale_sqr
                        || pivot_sqr
                            < REFACTOR_PIVOT_RELATIVE * REFACTOR_PIVOT_RELATIVE * row_max_sqr
                } else if !pivot.is_finite() {
                    true
                } else {
                    let pivot_mod = pivot.modulus();
                    let row_max = u_range
                        .clone()
                        .map(|s| self.u_vals[s * wdt + w].modulus())
                        .fold(0.0f64, f64::max);
                    pivot_mod == 0.0
                        || pivot_mod <= scale
                        || pivot_mod < REFACTOR_PIVOT_RELATIVE * row_max
                };
                if degraded {
                    self.statuses[w] = BatchLaneStatus::Degraded;
                    self.live[w] = false;
                }
            }
        }
        if self.statuses.iter().any(|s| s.is_factored()) {
            self.factored = true;
        }
        &self.statuses
    }

    /// Solves all lanes **in place** over lane-interleaved right-hand sides:
    /// `rhs[r·width + w]` is component `r` of lane `w`'s system on entry and
    /// of its solution on return; `work` is caller-held scratch of the same
    /// `n·width` length.
    ///
    /// One traversal of the shared L/U index structure drives every lane:
    /// each factor slot loaded once streams over `width` contiguous lanes
    /// via the `lane` kernels. Per lane the operation sequence — every
    /// product, subtraction and division, in order — is identical to a
    /// scalar [`SparseLu::solve_into`] with that lane's factors, so factored
    /// lanes produce bitwise-identical solutions at any width. Lanes that
    /// did not factor yield unspecified values (check
    /// [`statuses`](BatchedLu::statuses)).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::RhsLength`] when `rhs.len()` or `work.len()`
    /// differs from `width` times the matrix dimension.
    ///
    /// # Panics
    ///
    /// Panics when no [`refactor`](BatchedLu::refactor) call has produced a
    /// factored lane yet.
    pub fn solve_into(&self, rhs: &mut [T], work: &mut [T]) -> Result<(), SolveError> {
        let p = &*self.pattern;
        assert!(
            self.factored,
            "solve on an unfactored BatchedLu: refactor must produce a factored lane first"
        );
        let wdt = self.width;
        let expected = p.n * wdt;
        if rhs.len() != expected {
            return Err(SolveError::RhsLength {
                expected,
                got: rhs.len(),
            });
        }
        if work.len() != expected {
            return Err(SolveError::RhsLength {
                expected,
                got: work.len(),
            });
        }
        // Identical traversal to `solve_block_into`, with the panel axis
        // replaced by the variant axis: F and U sources live in later
        // elimination rows than the destination, L sources in earlier ones,
        // so the borrow splits are valid — but every lane multiplies its
        // *own* factor value, hence lane_mul_sub instead of panel_axpy.
        let backend = p.backend;
        for b in (0..p.block_ptr.len() - 1).rev() {
            let (bs, be) = (p.block_ptr[b], p.block_ptr[b + 1]);
            for i in bs..be {
                let pr = p.perm[i] * wdt;
                let row = i * wdt;
                work[row..row + wdt].copy_from_slice(&rhs[pr..pr + wdt]);
                {
                    let (head, tail) = work.split_at_mut(row + wdt);
                    let dst = &mut head[row..];
                    for t in p.f_ptr[i]..p.f_ptr[i + 1] {
                        let src = p.f_cols[t] * wdt - (row + wdt);
                        T::kernel_lane_mul_sub(
                            backend,
                            &self.f_vals[t * wdt..(t + 1) * wdt],
                            &tail[src..src + wdt],
                            dst,
                        );
                    }
                }
                {
                    let (head, tail) = work.split_at_mut(row);
                    let dst = &mut tail[..wdt];
                    for t in p.l_ptr[i]..p.l_ptr[i + 1] {
                        let src = p.l_cols[t] * wdt;
                        T::kernel_lane_mul_sub(
                            backend,
                            &self.l_vals[t * wdt..(t + 1) * wdt],
                            &head[src..src + wdt],
                            dst,
                        );
                    }
                }
            }
            for i in (bs..be).rev() {
                let start = p.u_ptr[i];
                let row = i * wdt;
                let (head, tail) = work.split_at_mut(row + wdt);
                let dst = &mut head[row..];
                for t in (start + 1)..p.u_ptr[i + 1] {
                    let src = p.u_cols[t] * wdt - (row + wdt);
                    T::kernel_lane_mul_sub(
                        backend,
                        &self.u_vals[t * wdt..(t + 1) * wdt],
                        &tail[src..src + wdt],
                        dst,
                    );
                }
                T::kernel_lane_div(backend, &self.u_vals[start * wdt..(start + 1) * wdt], dst);
            }
        }
        for i in 0..p.n {
            let c = p.cperm[i] * wdt;
            rhs[c..c + wdt].copy_from_slice(&work[i * wdt..(i + 1) * wdt]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::min_degree_order;
    use crate::TripletMatrix;
    use loopscope_math::Complex64;

    fn csr_from_dense(d: &[&[f64]]) -> CsrMatrix<f64> {
        let rows = d.len();
        let cols = d[0].len();
        let mut t = TripletMatrix::new(rows, cols);
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(i, j, v);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_small_dense_system() {
        let a = csr_from_dense(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_zero_diagonal_via_pivoting() {
        // Typical MNA pattern: a voltage-source branch row with zero diagonal.
        let a = csr_from_dense(&[&[0.0, 1.0], &[1.0, 1e-3]]);
        let x = solve_once(&a, &[5.0, 2.0]).unwrap();
        // x[1] = 5 (from row 0), x[0] = 2 − 1e-3·5.
        assert!((x[1] - 5.0).abs() < 1e-12);
        assert!((x[0] - (2.0 - 5e-3)).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = csr_from_dense(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_once(&a, &[1.0, 2.0]),
            Err(SolveError::Singular(_))
        ));
    }

    #[test]
    fn detects_structurally_empty_column() {
        let a = csr_from_dense(&[&[1.0, 0.0], &[3.0, 0.0]]);
        assert!(matches!(
            solve_once(&a, &[1.0, 2.0]),
            Err(SolveError::Singular(1))
        ));
    }

    #[test]
    fn badly_scaled_but_well_conditioned_factors() {
        // Everything around 1e-200: far below the old absolute threshold but
        // perfectly conditioned — the relative test must accept it.
        let a = csr_from_dense(&[&[2.0e-200, 1.0e-200], &[1.0e-200, 3.0e-200]]);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&[3.0e-200, 4.0e-200]).unwrap();
        // Exact solution of [[2,1],[1,3]]·x = [3,4] is [1, 1].
        assert!((x[0] - 1.0).abs() < 1e-10, "x0 = {}", x[0]);
        assert!((x[1] - 1.0).abs() < 1e-10, "x1 = {}", x[1]);
    }

    #[test]
    fn relatively_tiny_pivot_is_singular() {
        // A genuinely deficient column hidden behind mixed scales.
        let b = csr_from_dense(&[&[1.0e20, 1.0e4], &[1.0, 1.0e-16]]);
        // Elimination: row1 − 1e-20·row0 leaves ~1e-16 − 1e-16 at (1,1); the
        // exact value cancels to 0 and anything left is noise far below the
        // column scale (col_max = 1e4) times the relative threshold.
        assert!(matches!(SparseLu::factor(&b), Err(SolveError::Singular(1))));
    }

    #[test]
    fn rejects_non_square() {
        let mut t = TripletMatrix::<f64>::new(2, 3);
        t.push(0, 0, 1.0);
        assert!(matches!(
            SparseLu::factor(&t.to_csr()),
            Err(SolveError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a = csr_from_dense(&[&[1.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(SolveError::RhsLength {
                expected: 1,
                got: 2
            })
        ));
        let mut rhs = [1.0];
        let mut short_work = [];
        assert!(matches!(
            lu.solve_into(&mut rhs, &mut short_work),
            Err(SolveError::RhsLength {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn repeated_solves_reuse_factorization() {
        let a = csr_from_dense(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        for k in 1..5 {
            let x_true = vec![k as f64, -(k as f64)];
            let b = a.mul_vec(&x_true);
            let x = lu.solve(&b).unwrap();
            assert!((x[0] - x_true[0]).abs() < 1e-12);
            assert!((x[1] - x_true[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = csr_from_dense(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let alloc = lu.solve(&b).unwrap();
        let mut rhs = b.clone();
        let mut work = vec![0.0; 3];
        lu.solve_into(&mut rhs, &mut work).unwrap();
        for (a, b) in alloc.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn larger_banded_system() {
        // Tridiagonal resistive-ladder-like matrix.
        let n = 50;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn complex_system_roundtrip() {
        let n = 12;
        let mut t = TripletMatrix::<Complex64>::new(n, n);
        for i in 0..n {
            t.push(i, i, Complex64::new(3.0, 1.0 + i as f64 * 0.1));
            if i + 1 < n {
                t.push(i, i + 1, Complex64::new(-1.0, 0.3));
                t.push(i + 1, i, Complex64::new(0.2, -0.8));
            }
        }
        let a = t.to_csr();
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-10);
        }
    }

    #[test]
    fn fill_in_is_tracked() {
        // Arrow matrix: dense last row/column creates fill-in.
        let n = 10;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i + 1 < n {
                t.push(i, n - 1, 1.0);
                t.push(n - 1, i, 1.0);
            }
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.factor_nnz() >= a.nnz());
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        // Same pattern, different values: refactor must reproduce the fresh
        // solution without falling back.
        let a = csr_from_dense(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let b_mat = csr_from_dense(&[&[7.0, 2.0, 0.0], &[2.0, 9.0, 1.0], &[0.0, 1.0, 8.0]]);
        let rhs = b_mat.mul_vec(&[1.0, -2.0, 0.5]);
        let fresh = SparseLu::factor(&b_mat).unwrap().solve(&rhs).unwrap();
        let lu = SparseLu::refactor(&symbolic, &b_mat).unwrap();
        assert!(lu.refactored(), "pattern reuse must not fall back here");
        let re = lu.solve(&rhs).unwrap();
        for (f, r) in fresh.iter().zip(&re) {
            assert!((f - r).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_into_reuses_buffers() {
        let build = |scale: f64| {
            csr_from_dense(&[
                &[4.0 * scale, 1.0, 0.0],
                &[1.0, 5.0 * scale, 2.0],
                &[0.0, 2.0, 6.0 * scale],
            ])
        };
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic(&build(1.0)).unwrap();
        let mut ws = LuWorkspace::new();
        for k in 2..6 {
            let m = build(k as f64);
            lu.refactor_into(&symbolic, &m, &mut ws).unwrap();
            assert!(lu.refactored());
            let x_true = vec![1.0, -1.0, 0.5];
            let mut rhs = m.mul_vec(&x_true);
            let mut work = vec![0.0; 3];
            lu.solve_into(&mut rhs, &mut work).unwrap();
            for (xi, ti) in rhs.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn refactor_into_falls_back_and_recovers() {
        let a = csr_from_dense(&[&[1.0, 1.0e-3], &[1.0e-3, 1.0]]);
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let mut ws = LuWorkspace::new();
        // Degraded pivot: the in-place call must fall back to fresh pivoting.
        let b = csr_from_dense(&[&[1.0e-12, 1.0], &[1.0, 1.0e-12]]);
        lu.refactor_into(&symbolic, &b, &mut ws).unwrap();
        assert!(!lu.refactored());
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
        // The fallback's own pattern keeps working for further refactors.
        let symbolic2 = lu.extract_symbolic();
        lu.refactor_into(&symbolic2, &b, &mut ws).unwrap();
        assert!(lu.refactored());
    }

    #[test]
    fn refactor_handles_fill_in_pattern() {
        // Arrow matrix with fill-in: the reused pattern must include fill.
        let n = 8;
        let build = |scale: f64| {
            let mut t = TripletMatrix::<f64>::new(n, n);
            for i in 0..n {
                t.push(i, i, 4.0 * scale + i as f64);
                if i + 1 < n {
                    t.push(i, n - 1, 1.0 * scale);
                    t.push(n - 1, i, 1.5 / scale);
                }
            }
            t.to_csr()
        };
        let (_, symbolic) = SparseLu::factor_with_symbolic(&build(1.0)).unwrap();
        let m2 = build(1.7);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 - 0.3 * i as f64).collect();
        let rhs = m2.mul_vec(&x_true);
        let lu = SparseLu::refactor(&symbolic, &m2).unwrap();
        assert!(lu.refactored());
        let x = lu.solve(&rhs).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn refactor_falls_back_on_degraded_pivot() {
        // First matrix is diagonally dominant; the second flips the weight so
        // the recorded pivot order becomes terrible and the row-relative
        // pivot check must trigger the pivoting fallback.
        let a = csr_from_dense(&[&[1.0, 1.0e-3], &[1.0e-3, 1.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let b = csr_from_dense(&[&[1.0e-12, 1.0], &[1.0, 1.0e-12]]);
        let lu = SparseLu::refactor(&symbolic, &b).unwrap();
        assert!(!lu.refactored(), "degraded pivot must force fresh pivoting");
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        // b is (to 1e-12) the exchange matrix: x ≈ [2, 1].
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn refactor_rejects_pattern_mismatch_gracefully() {
        let a = csr_from_dense(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        // A different pattern (off-diagonal entries) must fall back, not
        // corrupt the factorization.
        let b = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = SparseLu::refactor(&symbolic, &b).unwrap();
        assert!(!lu.refactored());
        let x = lu.solve(&[3.0, 4.0]).unwrap();
        let r = b.mul_vec(&x);
        assert!((r[0] - 3.0).abs() < 1e-12 && (r[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn refactor_dimension_mismatch_is_hard_error() {
        let a = csr_from_dense(&[&[1.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let b = csr_from_dense(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(matches!(
            SparseLu::refactor(&symbolic, &b),
            Err(SolveError::NotSquare { .. })
        ));
        // The in-place form reports the same error and leaves the receiver
        // usable.
        let (mut lu1, sym1) = SparseLu::factor_with_symbolic(&a).unwrap();
        let mut ws = LuWorkspace::new();
        assert!(matches!(
            lu1.refactor_into(&sym1, &b, &mut ws),
            Err(SolveError::NotSquare { .. })
        ));
        let x = lu1.solve(&[2.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn from_symbolic_shell_refactors_like_a_fresh_refactor() {
        let build = |scale: f64| {
            csr_from_dense(&[
                &[4.0 * scale, 1.0, 0.0],
                &[1.0, 5.0 * scale, 2.0],
                &[0.0, 2.0, 6.0 * scale],
            ])
        };
        let (_, symbolic) = SparseLu::factor_with_symbolic(&build(1.0)).unwrap();
        // The shell never saw the factorization that produced the symbolic
        // analysis — only its pattern.
        let mut shell = SparseLu::from_symbolic(&symbolic);
        assert!(!shell.refactored());
        assert_eq!(shell.dim(), 3);
        let mut ws = LuWorkspace::for_dim(3);
        for k in 2..5 {
            let m = build(k as f64);
            shell.refactor_into(&symbolic, &m, &mut ws).unwrap();
            assert!(shell.refactored());
            let reference = SparseLu::refactor(&symbolic, &m).unwrap();
            let b = m.mul_vec(&[1.0, -2.0, 0.5]);
            let xs = shell.solve(&b).unwrap();
            let xr = reference.solve(&b).unwrap();
            // Same pattern, same values, same op order: bitwise identical.
            for (a, b) in xs.iter().zip(&xr) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unfactored SparseLu shell")]
    fn solving_an_unfilled_shell_panics() {
        let a = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let shell = SparseLu::<f64>::from_symbolic(&symbolic);
        let _ = shell.solve(&[1.0, 2.0]);
    }

    #[test]
    fn symbolic_reports_pattern_size() {
        let a = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let (lu, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        assert_eq!(symbolic.dim(), 2);
        assert_eq!(symbolic.fill_nnz(), lu.factor_nnz());
        assert_eq!(symbolic.pivot_order().len(), 2);
        // Natural-order factorizations record the identity column order.
        assert_eq!(symbolic.column_order(), &[0, 1]);
    }

    #[test]
    fn ordered_factor_solves_correctly() {
        // Arrow matrix where the hub is listed first: natural order fills in
        // completely, min degree defers the hub to the end.
        let n = 9;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 5.0 + i as f64);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.5);
            }
        }
        let a = t.to_csr();
        let order = min_degree_order(&a);
        let (lu, symbolic) = SparseLu::factor_with_symbolic_ordered(&a, &order).unwrap();
        assert_eq!(symbolic.column_order(), &order[..]);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let b = a.mul_vec(&x_true);
        let x = lu.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
        // The fill advantage the ordering exists for.
        let (_, natural) = SparseLu::factor_with_symbolic(&a).unwrap();
        assert!(symbolic.fill_nnz() < natural.fill_nnz());
    }

    #[test]
    fn ordered_refactor_roundtrip() {
        let n = 9;
        let build = |scale: f64| {
            let mut t = TripletMatrix::<f64>::new(n, n);
            for i in 0..n {
                t.push(i, i, (5.0 + i as f64) * scale);
                if i > 0 {
                    t.push(0, i, 1.0 * scale);
                    t.push(i, 0, 1.5);
                }
            }
            t.to_csr()
        };
        let first = build(1.0);
        let order = min_degree_order(&first);
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic_ordered(&first, &order).unwrap();
        let mut ws = LuWorkspace::new();
        for k in 2..5 {
            let m = build(k as f64);
            lu.refactor_into(&symbolic, &m, &mut ws).unwrap();
            assert!(lu.refactored(), "ordered pattern must be reusable");
            let x_true: Vec<f64> = (0..n).map(|i| 1.0 - 0.2 * i as f64).collect();
            let mut rhs = m.mul_vec(&x_true);
            let mut work = vec![0.0; n];
            lu.solve_into(&mut rhs, &mut work).unwrap();
            for (xi, ti) in rhs.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn degraded_fallback_keeps_fill_reducing_order() {
        // The symbolic analysis carries a non-identity column order; when new
        // values degrade the recorded pivots, the fallback must re-pivot
        // *within the same column order* instead of regressing to natural
        // order (which would drag higher fill through the rest of a sweep).
        let a = csr_from_dense(&[&[1.0, 1.0e-3], &[1.0e-3, 1.0]]);
        let order = vec![1, 0];
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic_ordered(&a, &order).unwrap();
        let b = csr_from_dense(&[&[1.0e-12, 1.0], &[1.0, 1.0e-12]]);
        let mut ws = LuWorkspace::new();
        lu.refactor_into(&symbolic, &b, &mut ws).unwrap();
        assert!(!lu.refactored(), "degraded pivot must force a fresh factor");
        assert_eq!(
            lu.extract_symbolic().column_order(),
            &order[..],
            "the fallback must retain the fill-reducing column order"
        );
        let x = lu.solve(&[1.0, 2.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ordered_threshold_forces_row_swap_when_needed() {
        // The ordering prefers the diagonal, but the diagonal entry of the
        // first eliminated column is 1e6 times smaller than the off-diagonal
        // candidate: the threshold test must swap rows, not accept it.
        let a = csr_from_dense(&[&[1.0e-6, 1.0], &[1.0, 1.0]]);
        let order = vec![0, 1];
        let (lu, _) = SparseLu::factor_with_symbolic_ordered(&a, &order).unwrap();
        let x_true = vec![3.0, -2.0];
        let b = a.mul_vec(&x_true);
        let x = lu.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
        // Row 1 must have been promoted to pivot for column 0.
        assert_eq!(lu.extract_symbolic().pivot_order()[0], 1);
    }

    #[test]
    fn ordered_factor_handles_zero_diagonal() {
        // MNA-style: voltage-source branch row with a structurally zero
        // diagonal. The ordering's preferred row is never a candidate, so
        // the threshold selection must fall through to an off-diagonal row.
        let a = csr_from_dense(&[&[0.0, 1.0], &[1.0, 1e-3]]);
        let order = vec![0, 1];
        let (lu, _) = SparseLu::factor_with_symbolic_ordered(&a, &order).unwrap();
        let x = lu.solve(&[5.0, 2.0]).unwrap();
        assert!((x[1] - 5.0).abs() < 1e-12);
        assert!((x[0] - (2.0 - 5e-3)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn ordered_factor_rejects_non_permutation() {
        let a = csr_from_dense(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let _ = SparseLu::factor_ordered(&a, &[0, 0]);
    }

    #[test]
    fn singular_error_reports_original_column_not_elimination_step() {
        // Original column 0 is structurally empty. Whatever order the
        // columns are eliminated in, the error must name column 0 — the
        // index a caller can map back to a circuit unknown — not the
        // permuted elimination step at which the failure surfaced.
        let a = csr_from_dense(&[&[0.0, 1.0], &[0.0, 2.0]]);
        assert!(matches!(SparseLu::factor(&a), Err(SolveError::Singular(0))));
        // Under the order [1, 0] the empty column is eliminated at STEP 1;
        // the un-mapped error would have been Singular(1).
        assert!(matches!(
            SparseLu::factor_ordered(&a, &[1, 0]),
            Err(SolveError::Singular(0))
        ));
        // The BTF path reports structural singularity the same way.
        assert!(matches!(
            SparseLu::factor_with_symbolic_btf(&a),
            Err(SolveError::Singular(0))
        ));
    }

    #[test]
    fn solve_once_runs_the_fill_reducing_path() {
        // Arrow matrix with the hub first: natural-order pivoting fills in
        // completely, the min-degree order solve_once now routes through
        // defers the hub and eliminates the fill.
        let n = 10;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 5.0 + i as f64);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.5);
            }
        }
        let a = t.to_csr();
        let ordered = fill_reducing_factor(&a).unwrap();
        let natural = SparseLu::factor(&a).unwrap();
        assert!(
            ordered.factor_nnz() < natural.factor_nnz(),
            "solve_once's factorization ({} nnz) must carry less fill than \
             natural-order pivoting ({} nnz)",
            ordered.factor_nnz(),
            natural.factor_nnz()
        );
        // No-fill optimum on the arrow pattern.
        assert_eq!(ordered.factor_nnz(), a.nnz());
        // And the solve itself stays correct through the public entry point.
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 - 0.1 * i as f64).collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
        // The squareness contract is preserved.
        let mut rect = TripletMatrix::<f64>::new(2, 3);
        rect.push(0, 0, 1.0);
        assert!(matches!(
            solve_once(&rect.to_csr(), &[1.0, 2.0]),
            Err(SolveError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    /// A 3-block cascade: two strongly coupled pairs and a singleton, with
    /// one-way coupling (later rows read earlier columns), plus a value
    /// knob that keeps the pattern fixed.
    fn cascade(scale: f64) -> CsrMatrix<f64> {
        let mut t = TripletMatrix::<f64>::new(5, 5);
        for b in 0..2 {
            let s = 2 * b;
            t.push(s, s, 3.0 * scale + s as f64);
            t.push(s, s + 1, 1.0);
            t.push(s + 1, s, 1.0 * scale);
            t.push(s + 1, s + 1, 4.0);
            if s > 0 {
                t.push(s, s - 1, 0.5 * scale);
            }
        }
        t.push(4, 3, 0.25);
        t.push(4, 4, 2.0 * scale);
        t.to_csr()
    }

    #[test]
    fn btf_factor_splits_blocks_and_solves_correctly() {
        let a = cascade(1.0);
        let (lu, symbolic) = SparseLu::factor_with_symbolic_btf(&a).unwrap();
        assert_eq!(symbolic.block_count(), 3);
        assert_eq!(lu.block_count(), 3);
        assert_eq!(
            symbolic.block_boundaries().len(),
            symbolic.block_count() + 1
        );
        // Off-diagonal entries are stored raw, never eliminated: the total
        // pattern matches the input exactly (each 2x2 block is dense and
        // the cascade couplings produce no fill).
        assert_eq!(symbolic.fill_nnz(), a.nnz());
        let x_true = vec![1.0, -2.0, 0.5, 3.0, -1.5];
        let b = a.mul_vec(&x_true);
        let x = lu.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{xi} vs {ti}");
        }
    }

    #[test]
    fn btf_single_block_degenerates_to_plain_ordered_factorization() {
        // Tridiagonal: irreducible, so BTF must produce the *identical*
        // factorization the plain min-degree ordered path produces.
        let n = 12;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.5);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let (btf_lu, btf_sym) = SparseLu::factor_with_symbolic_btf(&a).unwrap();
        assert_eq!(btf_sym.block_count(), 1);
        let order = min_degree_order(&a);
        let (plain_lu, plain_sym) = SparseLu::factor_with_symbolic_ordered(&a, &order).unwrap();
        assert_eq!(btf_sym.pivot_order(), plain_sym.pivot_order());
        assert_eq!(btf_sym.column_order(), plain_sym.column_order());
        assert_eq!(btf_sym.fill_nnz(), plain_sym.fill_nnz());
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let xb = btf_lu.solve(&b).unwrap();
        let xp = plain_lu.solve(&b).unwrap();
        for (a, b) in xb.iter().zip(&xp) {
            assert_eq!(a, b, "degenerate BTF must be bitwise the ordered path");
        }
    }

    #[test]
    fn btf_refactor_into_reuses_the_block_pattern() {
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic_btf(&cascade(1.0)).unwrap();
        let mut ws = LuWorkspace::for_dim(5);
        for k in 2..6 {
            let m = cascade(k as f64);
            lu.refactor_into(&symbolic, &m, &mut ws).unwrap();
            assert!(lu.refactored(), "block pattern must be reusable");
            assert_eq!(lu.block_count(), 3);
            let x_true = vec![0.5, 1.0, -1.0, 2.0, 0.25];
            let mut rhs = m.mul_vec(&x_true);
            let mut work = vec![0.0; 5];
            lu.solve_into(&mut rhs, &mut work).unwrap();
            for (xi, ti) in rhs.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-12, "{xi} vs {ti}");
            }
            // The refactorization must agree bitwise with a fresh BTF
            // factorization of the same values (same pattern, same ops).
            let fresh = SparseLu::factor_btf(&m).unwrap();
            let b = m.mul_vec(&x_true);
            let xf = fresh.solve(&b).unwrap();
            let mut xr = b.clone();
            lu.solve_into(&mut xr, &mut work).unwrap();
            for (a, b) in xr.iter().zip(&xf) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn btf_pattern_mismatch_falls_back() {
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic_btf(&cascade(1.0)).unwrap();
        // Feedback entry (0, 4) merges the blocks: off the recorded pattern.
        let mut t = TripletMatrix::<f64>::new(5, 5);
        for (r, c, v) in cascade(1.0).iter() {
            t.push(r, c, v);
        }
        t.push(0, 4, 0.5);
        let m = t.to_csr();
        let mut ws = LuWorkspace::new();
        lu.refactor_into(&symbolic, &m, &mut ws).unwrap();
        assert!(!lu.refactored(), "off-pattern entry must force a fallback");
        let x_true = vec![1.0, 1.0, 1.0, 1.0, 1.0];
        let b = m.mul_vec(&x_true);
        let x = lu.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_block_into_matches_independent_solves_bitwise() {
        // Cover both a multi-block (BTF) and a single-block factorization.
        let cases: Vec<SparseLu<f64>> = vec![
            SparseLu::factor_btf(&cascade(1.3)).unwrap(),
            SparseLu::factor(&csr_from_dense(&[
                &[4.0, 1.0, 0.0],
                &[1.0, 5.0, 2.0],
                &[0.0, 2.0, 6.0],
            ]))
            .unwrap(),
        ];
        for lu in &cases {
            let n = lu.dim();
            for k in 1..=4usize {
                // Column-major panel of k distinct right-hand sides.
                let mut panel: Vec<f64> = (0..n * k)
                    .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
                    .collect();
                let reference: Vec<Vec<f64>> = (0..k)
                    .map(|j| {
                        let mut rhs = panel[j * n..(j + 1) * n].to_vec();
                        let mut work = vec![0.0; n];
                        lu.solve_into(&mut rhs, &mut work).unwrap();
                        rhs
                    })
                    .collect();
                let mut work = vec![0.0; n * k];
                lu.solve_block_into(&mut panel, k, &mut work).unwrap();
                for (j, reference_col) in reference.iter().enumerate() {
                    for (a, b) in panel[j * n..(j + 1) * n].iter().zip(reference_col) {
                        assert_eq!(
                            a, b,
                            "panel width {k}, column {j}: blocked solve must be \
                             bitwise identical to the per-RHS solve"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn solve_block_into_rejects_bad_panel_lengths() {
        let a = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        let mut short = vec![0.0; 3];
        let mut work = vec![0.0; 4];
        assert!(matches!(
            lu.solve_block_into(&mut short, 2, &mut work),
            Err(SolveError::RhsLength {
                expected: 4,
                got: 3
            })
        ));
        let mut panel = vec![0.0; 4];
        let mut short_work = vec![0.0; 2];
        assert!(matches!(
            lu.solve_block_into(&mut panel, 2, &mut short_work),
            Err(SolveError::RhsLength {
                expected: 4,
                got: 2
            })
        ));
        // A zero-width panel is a no-op.
        lu.solve_block_into(&mut [], 0, &mut []).unwrap();
    }

    #[test]
    fn solve_error_display() {
        assert_eq!(
            SolveError::Singular(2).to_string(),
            "matrix is singular in column 2"
        );
        assert_eq!(
            SolveError::NotSquare { rows: 2, cols: 3 }.to_string(),
            "matrix is not square (2x3)"
        );
        assert_eq!(
            SolveError::RhsLength {
                expected: 4,
                got: 2
            }
            .to_string(),
            "right-hand side has length 2, expected 4"
        );
        assert_eq!(
            SolveError::NonFinite { row: 1, col: 3 }.to_string(),
            "matrix has a non-finite entry at (1, 3)"
        );
    }

    #[test]
    fn non_finite_input_is_rejected_with_coordinates() {
        // NaN would slip through every magnitude comparison; the up-front
        // scan must catch it with the original coordinates of the first
        // offending entry in row-major order.
        let a = csr_from_dense(&[&[2.0, 1.0], &[1.0, 1.0]]);
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut bad = a.clone();
            let slot = bad.find_slot(1, 0).unwrap();
            bad.values_mut()[slot] = poison;
            assert_eq!(
                SparseLu::factor(&bad).map(|_| ()),
                Err(SolveError::NonFinite { row: 1, col: 0 })
            );
        }
        // Same detection on the refactorization path — and as a hard error,
        // so the previous factorization must stay intact and solvable.
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let mut ws = LuWorkspace::new();
        let mut bad = a.clone();
        let slot = bad.find_slot(0, 1).unwrap();
        bad.values_mut()[slot] = f64::NAN;
        assert_eq!(
            lu.refactor_into(&symbolic, &bad, &mut ws),
            Err(SolveError::NonFinite { row: 0, col: 1 })
        );
        let x = lu.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] + 5.0).abs() < 1e-12 && (x[1] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn refined_solve_converges_with_zero_steps_on_healthy_systems() {
        let a = csr_from_dense(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let lu = SparseLu::factor(&a).unwrap();
        let mut rhs = b.clone();
        let mut ws = RefineWorkspace::for_dim(3);
        let q = lu.solve_refined_into(&a, &mut rhs, &mut ws).unwrap();
        assert!(q.converged);
        assert_eq!(q.refinement_steps, 0);
        assert!(q.backward_error <= REFINE_BACKWARD_TOLERANCE);
        assert!(q.residual_norm.is_finite());
        assert!(q.pivot_growth > 0.0 && q.pivot_growth.is_finite());
        for (xi, ti) in rhs.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn refined_solve_repairs_a_degraded_factorization() {
        // Factor A, then ask the factorization to solve a *perturbed*
        // system through solve_refined_into: the direct solve is now only
        // approximate, and refinement must drive the residual down.
        let a = csr_from_dense(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]);
        let mut a_pert = a.clone();
        for v in a_pert.values_mut() {
            *v *= 1.0 + 1.0e-4;
        }
        // Also skew one entry so the perturbation is not a pure scaling
        // (a scaling alone would leave the direction of x exact).
        let slot = a_pert.find_slot(1, 2).unwrap();
        a_pert.values_mut()[slot] *= 1.02;
        let lu = SparseLu::factor(&a).unwrap();
        let x_true = vec![0.5, -1.5, 2.5];
        let b = a_pert.mul_vec(&x_true);

        // Plain solve through the stale factors: measurable residual.
        let mut plain = b.clone();
        let mut work = vec![0.0; 3];
        lu.solve_into(&mut plain, &mut work).unwrap();
        let mut r_plain: Vec<f64> = vec![0.0; 3];
        for (row, ri) in r_plain.iter_mut().enumerate() {
            let mut acc = b[row];
            for (c, v) in a_pert.row_entries(row) {
                acc -= v * plain[c];
            }
            *ri = acc;
        }
        let plain_norm = r_plain.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(plain_norm > 1e-9, "plain residual {plain_norm} too small");

        // Refined solve against the true (perturbed) matrix: the residual
        // must come down by orders of magnitude and never exceed plain.
        let mut rhs = b.clone();
        let mut ws = RefineWorkspace::for_dim(3);
        let q = lu.solve_refined_into(&a_pert, &mut rhs, &mut ws).unwrap();
        assert!(q.refinement_steps >= 1, "refinement did not engage");
        assert!(q.converged, "backward error {}", q.backward_error);
        assert!(
            q.residual_norm <= plain_norm,
            "refined {} vs plain {plain_norm}",
            q.residual_norm
        );
        for (xi, ti) in rhs.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "x = {xi}, expected {ti}");
        }
    }

    #[test]
    fn refined_solve_handles_complex_systems() {
        let mut t = TripletMatrix::<Complex64>::new(2, 2);
        t.push(0, 0, Complex64::new(2.0, 1.0));
        t.push(0, 1, Complex64::new(0.0, -1.0));
        t.push(1, 0, Complex64::new(1.0, 0.0));
        t.push(1, 1, Complex64::new(3.0, 2.0));
        let a = t.to_csr();
        let x_true = vec![Complex64::new(1.0, -1.0), Complex64::new(-2.0, 0.5)];
        let b = a.mul_vec(&x_true);
        let lu = SparseLu::factor(&a).unwrap();
        let mut rhs = b.clone();
        let mut ws = RefineWorkspace::for_dim(2);
        let q = lu.solve_refined_into(&a, &mut rhs, &mut ws).unwrap();
        assert!(q.converged);
        assert_eq!(q.refinement_steps, 0);
        for (xi, ti) in rhs.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-12);
        }
    }

    #[test]
    fn refined_solve_rejects_dimension_mismatches() {
        let a = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        let mut ws = RefineWorkspace::new();
        let wide = csr_from_dense(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert!(matches!(
            lu.solve_refined_into(&wide, &mut [1.0, 2.0], &mut ws),
            Err(SolveError::NotSquare { rows: 3, cols: 3 })
        ));
        assert!(matches!(
            lu.solve_refined_into(&a, &mut [1.0], &mut ws),
            Err(SolveError::RhsLength {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn adjoint_solve_matches_conjugate_transpose() {
        // Verify Aᴴ·z = w through the BTF path (multiple blocks, F entries)
        // for a complex matrix — the hardest configuration the adjoint
        // sweeps must get right.
        let mut t = TripletMatrix::<Complex64>::new(5, 5);
        let entries = [
            (0, 0, 2.0, 0.5),
            (0, 1, 1.0, -0.25),
            (1, 0, 1.0, 0.0),
            (1, 1, 3.0, 1.0),
            (0, 3, 0.5, 0.75),
            (2, 2, 4.0, -1.0),
            (2, 4, 1.5, 0.0),
            (3, 3, 2.5, 0.5),
            (3, 4, 1.0, 1.0),
            (4, 4, 5.0, -0.5),
        ];
        for &(r, c, re, im) in &entries {
            t.push(r, c, Complex64::new(re, im));
        }
        let a = t.to_csr();
        let (lu, symbolic) = SparseLu::factor_with_symbolic_btf(&a).unwrap();
        assert!(symbolic.block_count() > 1, "test wants a real BTF split");
        let w: Vec<Complex64> = (0..5)
            .map(|i| Complex64::new(1.0 + i as f64, 0.5 - i as f64))
            .collect();
        let mut z = w.clone();
        let mut work = vec![Complex64::ZERO; 5];
        lu.solve_adjoint_into(&mut z, &mut work);
        // Check Σ_r conj(A[r][c])·z[r] = w[c] for every column c.
        let mut lhs = [Complex64::ZERO; 5];
        for (r, c, v) in a.iter() {
            lhs[c] += Scalar::conj(v) * z[r];
        }
        for (l, wi) in lhs.iter().zip(&w) {
            assert!(
                (*l - *wi).abs() < 1e-12,
                "adjoint mismatch: {l:?} vs {wi:?}"
            );
        }
    }

    #[test]
    fn condition_estimate_tracks_known_conditioning() {
        // Identity: κ = 1.
        let eye = csr_from_dense(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let lu = SparseLu::factor(&eye).unwrap();
        let k = lu.condition_estimate(&eye).unwrap();
        assert!((k - 1.0).abs() < 1e-12, "κ(I) = {k}");

        // Diagonal with spread 1e8: κ₁ = 1e8 exactly.
        let d = csr_from_dense(&[&[1.0, 0.0], &[0.0, 1.0e-8]]);
        let lu = SparseLu::factor(&d).unwrap();
        let k = lu.condition_estimate(&d).unwrap();
        assert!((k - 1.0e8).abs() / 1.0e8 < 1e-6, "κ(D) = {k}");

        // A well-conditioned dense-ish system stays small; estimate is a
        // lower bound so only sanity-check the range.
        let a = csr_from_dense(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        let k = lu.condition_estimate(&a).unwrap();
        assert!((1.0..100.0).contains(&k), "κ(A) = {k}");

        // Near-singular: two almost linearly dependent rows must report a
        // large κ.
        let s = csr_from_dense(&[&[1.0, 1.0], &[1.0, 1.0 + 1.0e-10]]);
        let lu = SparseLu::factor(&s).unwrap();
        let k = lu.condition_estimate(&s).unwrap();
        assert!(k > 1.0e9, "κ(near-singular) = {k}");
    }

    #[test]
    fn condition_estimate_works_through_btf_blocks() {
        // cascade() builds a 3-block BTF system; the estimator must run
        // its adjoint solves correctly across the F coupling.
        let a = cascade(1.0);
        let (lu, symbolic) = SparseLu::factor_with_symbolic_btf(&a).unwrap();
        assert!(symbolic.block_count() > 1);
        let k = lu.condition_estimate(&a).unwrap();
        assert!(k.is_finite() && k >= 1.0, "κ(cascade) = {k}");
    }

    #[test]
    fn refined_solve_badly_scaled_system() {
        // The 1e-200 scale regime: squared magnitudes underflow to zero,
        // so this exercises every exact-modulus fallback path at once
        // (column scan, pivot checks, norms).
        let a = csr_from_dense(&[&[2.0e-200, 1.0e-200], &[1.0e-200, 3.0e-200]]);
        let lu = SparseLu::factor(&a).unwrap();
        let mut rhs = vec![3.0e-200, 4.0e-200];
        let mut ws = RefineWorkspace::for_dim(2);
        let q = lu.solve_refined_into(&a, &mut rhs, &mut ws).unwrap();
        assert!(q.converged, "backward error {}", q.backward_error);
        assert!((rhs[0] - 1.0).abs() < 1e-10 && (rhs[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn badly_scaled_refactor_reuses_the_pattern() {
        // Companion to badly_scaled_but_well_conditioned_factors for the
        // refactorization path: the squared-magnitude pivot checks must
        // fall back to exact moduli instead of declaring degradation.
        let build = |s: f64| csr_from_dense(&[&[2.0 * s, 1.0 * s], &[1.0 * s, 3.0 * s]]);
        let (mut lu, symbolic) = SparseLu::factor_with_symbolic(&build(1.0)).unwrap();
        let mut ws = LuWorkspace::new();
        lu.refactor_into(&symbolic, &build(1.0e-200), &mut ws)
            .unwrap();
        assert!(
            lu.refactored(),
            "well-conditioned tiny-scale refactor must not fall back"
        );
        let x = lu.solve(&[3.0e-200, 4.0e-200]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10 && (x[1] - 1.0).abs() < 1e-10);
    }

    /// Lane-interleaves per-variant vectors into the SoA layout
    /// [`BatchedLu::solve_into`] consumes.
    fn interleave<T: Scalar>(lanes: &[Vec<T>], width: usize) -> Vec<T> {
        let n = lanes[0].len();
        let mut out = vec![T::ZERO; n * width];
        for (w, lane) in lanes.iter().enumerate() {
            for (r, &v) in lane.iter().enumerate() {
                out[r * width + w] = v;
            }
        }
        out
    }

    #[test]
    fn batched_refactor_and_solve_bitwise_match_scalar_btf() {
        // Three value variants over the 3-block cascade pattern: every
        // factor value and every solution component of every lane must be
        // bit-identical to a scalar refactor_into + solve_into on that
        // variant alone (F entries included — the batch crosses BTF blocks).
        let scales = [1.0, 1.7, 0.4];
        let (_, symbolic) = SparseLu::factor_with_symbolic_btf(&cascade(scales[0])).unwrap();
        let matrices: Vec<CsrMatrix<f64>> = scales.iter().map(|&s| cascade(s)).collect();
        let rhs_of = |s: f64| vec![3.0 * s, -1.0, 0.5 * s, 2.0, 1.0 + s];

        let mut batched = BatchedLu::new(&symbolic, scales.len());
        assert_eq!(batched.width(), 3);
        assert_eq!(batched.dim(), 5);
        let statuses = batched.refactor(&matrices).to_vec();
        assert!(statuses.iter().all(|s| s.is_factored()), "{statuses:?}");
        let lanes: Vec<Vec<f64>> = scales.iter().map(|&s| rhs_of(s)).collect();
        let mut soa = interleave(&lanes, scales.len());
        let mut soa_work = vec![0.0; soa.len()];
        batched.solve_into(&mut soa, &mut soa_work).unwrap();

        let mut ws = LuWorkspace::new();
        for (w, (matrix, &s)) in matrices.iter().zip(&scales).enumerate() {
            let mut lu = SparseLu::from_symbolic(&symbolic);
            lu.refactor_into(&symbolic, matrix, &mut ws).unwrap();
            assert!(lu.refactored());
            let mut x = rhs_of(s);
            let mut work = vec![0.0; x.len()];
            lu.solve_into(&mut x, &mut work).unwrap();
            for (r, xi) in x.iter().enumerate() {
                assert_eq!(
                    xi.to_bits(),
                    soa[r * scales.len() + w].to_bits(),
                    "lane {w} row {r}: scalar {xi} vs batched {}",
                    soa[r * scales.len() + w]
                );
            }
        }
    }

    #[test]
    fn batched_complex_identical_across_widths() {
        // The same complex variants solved at widths 1..=4 (width 4 leaves a
        // surplus lane) must agree bitwise with each other and with the
        // scalar path — width 1 *is* the serial reference, so this is the
        // in-crate form of the batch determinism contract.
        let build = |s: f64| {
            let n = 9;
            let mut t = TripletMatrix::<Complex64>::new(n, n);
            for i in 0..n {
                t.push(i, i, Complex64::new(3.0 * s, 1.0 + i as f64 * 0.1));
                if i + 1 < n {
                    t.push(i, i + 1, Complex64::new(-1.0, 0.3 * s));
                    t.push(i + 1, i, Complex64::new(0.2 * s, -0.8));
                }
            }
            t.to_csr()
        };
        let scales = [1.0, 1.3, 0.6];
        let (_, symbolic) = SparseLu::factor_with_symbolic_btf(&build(scales[0])).unwrap();
        let matrices: Vec<CsrMatrix<Complex64>> = scales.iter().map(|&s| build(s)).collect();
        let rhs: Vec<Vec<Complex64>> = scales
            .iter()
            .map(|&s| {
                (0..9)
                    .map(|i| Complex64::new((i as f64 * s).cos(), (i as f64 * 0.5).sin()))
                    .collect()
            })
            .collect();

        let mut ws = LuWorkspace::new();
        let reference: Vec<Vec<Complex64>> = matrices
            .iter()
            .zip(&rhs)
            .map(|(m, b)| {
                let mut lu = SparseLu::from_symbolic(&symbolic);
                lu.refactor_into(&symbolic, m, &mut ws).unwrap();
                let mut x = b.clone();
                let mut work = vec![Complex64::ZERO; x.len()];
                lu.solve_into(&mut x, &mut work).unwrap();
                x
            })
            .collect();

        for width in 1..=4usize {
            let mut batched = BatchedLu::new(&symbolic, width);
            for group in (0..scales.len()).step_by(width) {
                let end = (group + width).min(scales.len());
                let statuses = batched.refactor(&matrices[group..end]).to_vec();
                assert!(statuses.iter().all(|s| s.is_factored()));
                let lanes: Vec<Vec<Complex64>> = rhs[group..end].to_vec();
                let mut soa = interleave(&lanes, width);
                let mut soa_work = vec![Complex64::ZERO; soa.len()];
                batched.solve_into(&mut soa, &mut soa_work).unwrap();
                for (w, want) in reference[group..end].iter().enumerate() {
                    for (r, xi) in want.iter().enumerate() {
                        let got = soa[r * width + w];
                        assert!(
                            xi.re.to_bits() == got.re.to_bits()
                                && xi.im.to_bits() == got.im.to_bits(),
                            "width {width} lane {w} row {r}: {xi:?} vs {got:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_lane_failures_are_isolated() {
        let good = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&good).unwrap();
        // Lane 1: exactly singular within the pattern (u22 eliminates to 0).
        let degraded = csr_from_dense(&[&[1.0, 1.0], &[1.0, 1.0]]);
        // Lane 2: an entry the pattern does not know about is impossible for
        // a 2x2 full pattern, so use a NaN stamp instead (hard error).
        let mut t = TripletMatrix::<f64>::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(0, 1, f64::NAN);
        t.push(1, 0, 1.0);
        t.push(1, 1, 3.0);
        let poisoned = t.to_csr();
        // Lane 3: wrong dimension.
        let small = csr_from_dense(&[&[1.0]]);

        let mut batched = BatchedLu::new(&symbolic, 4);
        let statuses = batched
            .refactor(&[good.clone(), degraded, poisoned, small])
            .to_vec();
        assert_eq!(statuses[0], BatchLaneStatus::Factored);
        assert_eq!(statuses[1], BatchLaneStatus::Degraded);
        assert!(matches!(
            statuses[2],
            BatchLaneStatus::Failed(SolveError::NonFinite { .. })
        ));
        assert!(matches!(
            statuses[3],
            BatchLaneStatus::Failed(SolveError::NotSquare { .. })
        ));

        // The healthy lane solves to the scalar result despite its
        // neighbors' garbage.
        let mut soa = interleave(
            &[vec![5.0, 10.0], vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]],
            4,
        );
        let mut soa_work = vec![0.0; soa.len()];
        batched.solve_into(&mut soa, &mut soa_work).unwrap();
        let lu = SparseLu::factor(&good).unwrap();
        let x = lu.solve(&[5.0, 10.0]).unwrap();
        assert_eq!(x[0].to_bits(), soa[0].to_bits());
        assert_eq!(x[1].to_bits(), soa[4].to_bits());
    }

    #[test]
    fn batched_pattern_mismatch_marks_the_lane() {
        // Tridiagonal symbolic; the second variant has a corner entry the
        // pattern never saw.
        let base = csr_from_dense(&[&[4.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 4.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&base).unwrap();
        let stray = csr_from_dense(&[&[4.0, 1.0, 0.5], &[1.0, 4.0, 1.0], &[0.0, 1.0, 4.0]]);
        let mut batched = BatchedLu::new(&symbolic, 2);
        let statuses = batched.refactor(&[base.clone(), stray]).to_vec();
        assert_eq!(statuses[0], BatchLaneStatus::Factored);
        assert_eq!(statuses[1], BatchLaneStatus::PatternMismatch);
    }

    #[test]
    fn batched_solve_rejects_wrong_lengths() {
        let a = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let (_, symbolic) = SparseLu::factor_with_symbolic(&a).unwrap();
        let mut batched = BatchedLu::new(&symbolic, 2);
        batched.refactor(&[a.clone(), a.clone()]);
        let mut short = vec![0.0; 3];
        let mut work = vec![0.0; 4];
        assert!(matches!(
            batched.solve_into(&mut short, &mut work),
            Err(SolveError::RhsLength {
                expected: 4,
                got: 3
            })
        ));
        let mut rhs = vec![0.0; 4];
        let mut short_work = vec![0.0; 2];
        assert!(matches!(
            batched.solve_into(&mut rhs, &mut short_work),
            Err(SolveError::RhsLength {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn normwise_backward_error_matches_refined_solve_rule() {
        // A candidate produced by a verified solve must score below the
        // refinement tolerance through the public helper, and a perturbed
        // candidate must score worse — the helper is the accept/escalate
        // rule batched drivers apply outside the refined path.
        let a = csr_from_dense(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = lu.solve(&b).unwrap();
        let mut residual = vec![0.0; 3];
        let berr = normwise_backward_error(&a, &x, &b, &mut residual);
        assert!(berr <= REFINE_BACKWARD_TOLERANCE, "berr = {berr}");
        let worse: Vec<f64> = x.iter().map(|v| v + 1.0e-3).collect();
        let berr_worse = normwise_backward_error(&a, &worse, &b, &mut residual);
        assert!(berr_worse > berr && berr_worse > REFINE_BACKWARD_TOLERANCE);
        // Exact-zero residual reports exactly 0.
        assert_eq!(
            normwise_backward_error(&a, &[0.0; 3], &[0.0; 3], &mut residual),
            0.0
        );
    }
}
