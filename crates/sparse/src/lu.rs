//! Sparse LU factorization with partial pivoting.
//!
//! The factorization operates on row maps (`BTreeMap<usize, T>` per row), so
//! fill-in created during elimination is inserted where it appears. Pivoting
//! is partial (largest modulus in the pivot column among the remaining rows),
//! which is robust for MNA matrices that contain zero diagonal entries for
//! voltage-source branch equations.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced by factorization or solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (no usable pivot) at the given elimination step.
    Singular(usize),
    /// The matrix is not square.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// The right-hand side length does not match the matrix dimension.
    RhsLength {
        /// Matrix dimension.
        expected: usize,
        /// Supplied right-hand-side length.
        got: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular(k) => write!(f, "matrix is singular at elimination step {k}"),
            SolveError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            SolveError::RhsLength { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// An LU factorization `P·A = L·U` of a sparse square matrix.
///
/// The factors are stored as sparse row maps; [`solve`](SparseLu::solve) can
/// be called repeatedly with different right-hand sides, which is how the AC
/// sweep reuses structure across frequency points (one factorization per
/// frequency, one solve per stimulus).
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar> {
    n: usize,
    /// Row permutation: `perm[k]` is the original row index used as pivot row
    /// at elimination step `k`.
    perm: Vec<usize>,
    /// Unit-lower-triangular factors: for each elimination step `k`, the list
    /// of `(row, multiplier)` pairs that were eliminated using pivot `k`.
    lower: Vec<Vec<(usize, T)>>,
    /// Upper-triangular rows indexed by elimination step.
    upper: Vec<BTreeMap<usize, T>>,
    /// Pivot values (diagonal of U).
    pivots: Vec<T>,
}

/// Relative threshold under which a pivot is declared numerically singular.
const SINGULARITY_THRESHOLD: f64 = 1e-250;

impl<T: Scalar> SparseLu<T> {
    /// Factors a square sparse matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for rectangular input and
    /// [`SolveError::Singular`] when no acceptable pivot exists at some step.
    pub fn factor(matrix: &CsrMatrix<T>) -> Result<Self, SolveError> {
        let n = matrix.rows();
        if matrix.cols() != n {
            return Err(SolveError::NotSquare {
                rows: n,
                cols: matrix.cols(),
            });
        }

        // Working row maps.
        let mut rows: Vec<BTreeMap<usize, T>> = (0..n)
            .map(|r| matrix.row_entries(r).collect::<BTreeMap<usize, T>>())
            .collect();
        // Which original rows are still uneliminated.
        let mut active: Vec<usize> = (0..n).collect();

        let mut perm = Vec::with_capacity(n);
        let mut lower: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);
        let mut upper: Vec<BTreeMap<usize, T>> = Vec::with_capacity(n);
        let mut pivots = Vec::with_capacity(n);

        for k in 0..n {
            // Partial pivoting: among active rows, choose the one with the
            // largest modulus in column k.
            let mut best: Option<(usize, f64)> = None;
            for (ai, &r) in active.iter().enumerate() {
                if let Some(v) = rows[r].get(&k) {
                    let m = v.modulus();
                    if m > best.map_or(0.0, |(_, bm)| bm) {
                        best = Some((ai, m));
                    }
                }
            }
            let (active_idx, pivot_mod) = best.ok_or(SolveError::Singular(k))?;
            if pivot_mod < SINGULARITY_THRESHOLD {
                return Err(SolveError::Singular(k));
            }
            let pivot_row = active.swap_remove(active_idx);
            let pivot_map = std::mem::take(&mut rows[pivot_row]);
            let pivot_val = *pivot_map.get(&k).expect("pivot entry must exist");

            // Eliminate column k from the remaining active rows.
            let mut l_col = Vec::new();
            for &r in &active {
                let Some(&a_rk) = rows[r].get(&k) else {
                    continue;
                };
                let factor = a_rk / pivot_val;
                rows[r].remove(&k);
                if factor.is_zero() {
                    continue;
                }
                for (&c, &p_v) in pivot_map.range((k + 1)..) {
                    let entry = rows[r].entry(c).or_insert(T::ZERO);
                    *entry -= factor * p_v;
                    // Drop entries that cancelled exactly to keep rows sparse.
                    if entry.is_zero() {
                        rows[r].remove(&c);
                    }
                }
                l_col.push((r, factor));
            }

            perm.push(pivot_row);
            lower.push(l_col);
            pivots.push(pivot_val);
            upper.push(pivot_map);
        }

        Ok(Self {
            n,
            perm,
            lower,
            upper,
            pivots,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total number of stored entries in the L and U factors (a fill-in
    /// diagnostic).
    pub fn factor_nnz(&self) -> usize {
        self.lower.iter().map(Vec::len).sum::<usize>()
            + self.upper.iter().map(BTreeMap::len).sum::<usize>()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::RhsLength`] when `b.len()` does not match the
    /// matrix dimension.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, SolveError> {
        if b.len() != self.n {
            return Err(SolveError::RhsLength {
                expected: self.n,
                got: b.len(),
            });
        }
        // Forward elimination applied to a copy of b, indexed by ORIGINAL row.
        let mut work = b.to_vec();
        let mut y = vec![T::ZERO; self.n];
        for k in 0..self.n {
            let yk = work[self.perm[k]];
            y[k] = yk;
            for &(row, factor) in &self.lower[k] {
                work[row] -= factor * yk;
            }
        }
        // Back substitution on U (indexed by elimination step).
        let mut x = vec![T::ZERO; self.n];
        for k in (0..self.n).rev() {
            let mut acc = y[k];
            for (&c, &v) in self.upper[k].range((k + 1)..) {
                acc -= v * x[c];
            }
            x[k] = acc / self.pivots[k];
        }
        Ok(x)
    }
}

/// Convenience helper: factor `matrix` and solve for a single right-hand side.
///
/// # Errors
///
/// Propagates any [`SolveError`] from factorization or solve.
pub fn solve_once<T: Scalar>(matrix: &CsrMatrix<T>, b: &[T]) -> Result<Vec<T>, SolveError> {
    SparseLu::factor(matrix)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;
    use loopscope_math::Complex64;

    fn csr_from_dense(d: &[&[f64]]) -> CsrMatrix<f64> {
        let rows = d.len();
        let cols = d[0].len();
        let mut t = TripletMatrix::new(rows, cols);
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(i, j, v);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_small_dense_system() {
        let a = csr_from_dense(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_zero_diagonal_via_pivoting() {
        // Typical MNA pattern: a voltage-source branch row with zero diagonal.
        let a = csr_from_dense(&[&[0.0, 1.0], &[1.0, 1e-3]]);
        let x = solve_once(&a, &[5.0, 2.0]).unwrap();
        // x[1] = 5 (from row 0), x[0] = 2 − 1e-3·5.
        assert!((x[1] - 5.0).abs() < 1e-12);
        assert!((x[0] - (2.0 - 5e-3)).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = csr_from_dense(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_once(&a, &[1.0, 2.0]),
            Err(SolveError::Singular(_))
        ));
    }

    #[test]
    fn detects_structurally_empty_column() {
        let a = csr_from_dense(&[&[1.0, 0.0], &[3.0, 0.0]]);
        assert!(matches!(
            solve_once(&a, &[1.0, 2.0]),
            Err(SolveError::Singular(1))
        ));
    }

    #[test]
    fn rejects_non_square() {
        let mut t = TripletMatrix::<f64>::new(2, 3);
        t.push(0, 0, 1.0);
        assert!(matches!(
            SparseLu::factor(&t.to_csr()),
            Err(SolveError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a = csr_from_dense(&[&[1.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(SolveError::RhsLength { expected: 1, got: 2 })
        ));
    }

    #[test]
    fn repeated_solves_reuse_factorization() {
        let a = csr_from_dense(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = SparseLu::factor(&a).unwrap();
        for k in 1..5 {
            let x_true = vec![k as f64, -(k as f64)];
            let b = a.mul_vec(&x_true);
            let x = lu.solve(&b).unwrap();
            assert!((x[0] - x_true[0]).abs() < 1e-12);
            assert!((x[1] - x_true[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn larger_banded_system() {
        // Tridiagonal resistive-ladder-like matrix.
        let n = 50;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn complex_system_roundtrip() {
        let n = 12;
        let mut t = TripletMatrix::<Complex64>::new(n, n);
        for i in 0..n {
            t.push(i, i, Complex64::new(3.0, 1.0 + i as f64 * 0.1));
            if i + 1 < n {
                t.push(i, i + 1, Complex64::new(-1.0, 0.3));
                t.push(i + 1, i, Complex64::new(0.2, -0.8));
            }
        }
        let a = t.to_csr();
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let b = a.mul_vec(&x_true);
        let x = solve_once(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-10);
        }
    }

    #[test]
    fn fill_in_is_tracked() {
        // Arrow matrix: dense last row/column creates fill-in.
        let n = 10;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i + 1 < n {
                t.push(i, n - 1, 1.0);
                t.push(n - 1, i, 1.0);
            }
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.factor_nnz() >= a.nnz());
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_error_display() {
        assert_eq!(
            SolveError::Singular(2).to_string(),
            "matrix is singular at elimination step 2"
        );
        assert_eq!(
            SolveError::NotSquare { rows: 2, cols: 3 }.to_string(),
            "matrix is not square (2x3)"
        );
        assert_eq!(
            SolveError::RhsLength { expected: 4, got: 2 }.to_string(),
            "right-hand side has length 2, expected 4"
        );
    }
}
