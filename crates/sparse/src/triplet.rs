//! Coordinate-format (triplet) sparse matrix builder.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::collections::BTreeMap;

/// A coordinate-format sparse matrix accumulator.
///
/// MNA element stamps call [`push`](TripletMatrix::push) repeatedly; entries
/// that address the same `(row, col)` position are summed when the matrix is
/// converted to CSR, exactly matching the superposition semantics of nodal
/// analysis stamps.
///
/// ```
/// use loopscope_sparse::TripletMatrix;
/// let mut t = TripletMatrix::<f64>::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // stamps accumulate
/// let m = t.to_csr();
/// assert_eq!(m.get(0, 0), 3.0);
/// assert_eq!(m.nnz(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TripletMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> TripletMatrix<T> {
    /// Creates an empty `rows × cols` accumulator.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an accumulator with pre-allocated capacity for `cap` stamps.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-deduplication) entries pushed so far.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// Zero values are accepted (they can still create structural entries).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Removes all entries, keeping the allocation and dimensions.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Converts to compressed sparse row form, summing duplicate entries.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        // BTreeMap keyed by (row, col) gives deterministic ordering and
        // accumulation in one pass.
        let mut acc: BTreeMap<(usize, usize), T> = BTreeMap::new();
        for &(r, c, v) in &self.entries {
            acc.entry((r, c)).and_modify(|e| *e += v).or_insert(v);
        }
        CsrMatrix::from_sorted_entries(self.rows, self.cols, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope_math::Complex64;

    #[test]
    fn accumulates_duplicates() {
        let mut t = TripletMatrix::<f64>::new(3, 3);
        t.push(1, 2, 5.0);
        t.push(1, 2, -2.0);
        t.push(0, 0, 1.0);
        let m = t.to_csr();
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn clear_resets_entries() {
        let mut t = TripletMatrix::<f64>::new(2, 2);
        t.push(0, 0, 1.0);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds() {
        let mut t = TripletMatrix::<f64>::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn complex_entries() {
        let mut t = TripletMatrix::<Complex64>::new(2, 2);
        t.push(0, 1, Complex64::new(1.0, 2.0));
        t.push(0, 1, Complex64::new(0.5, -1.0));
        let m = t.to_csr();
        assert_eq!(m.get(0, 1), Complex64::new(1.5, 1.0));
    }

    #[test]
    fn capacity_constructor() {
        let t = TripletMatrix::<f64>::with_capacity(4, 4, 16);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.raw_len(), 0);
    }
}
