//! Sparse matrices and a sparse LU solver for circuit simulation.
//!
//! Modified nodal analysis (MNA) produces matrices that are extremely sparse
//! — each circuit element touches at most a handful of rows/columns — so the
//! simulator in `loopscope-spice` assembles its systems through the types in
//! this crate:
//!
//! * [`TripletMatrix`] — a coordinate-format accumulator that element
//!   "stamps" append to; duplicate entries are summed, which matches how MNA
//!   stamps superpose.
//! * [`CsrMatrix`] — compressed sparse row storage used for matrix-vector
//!   products and as the input to factorization.
//! * [`SparseLu`] — a row-map based LU factorization with partial pivoting
//!   that handles fill-in and works for both real and complex scalars.
//!
//! The scalar abstraction [`Scalar`] is implemented for `f64` (DC and
//! transient analyses) and [`Complex64`] (AC analysis).
//!
//! # Example
//!
//! ```
//! use loopscope_sparse::{TripletMatrix, SparseLu};
//!
//! // 2x2 system: [2 1; 1 3]·x = [5, 10]  →  x = [1, 3]
//! let mut t = TripletMatrix::<f64>::new(2, 2);
//! t.push(0, 0, 2.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let lu = SparseLu::factor(&t.to_csr())?;
//! let x = lu.solve(&[5.0, 10.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
//! # Ok::<(), loopscope_sparse::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod lu;
mod scalar;
mod triplet;

pub use csr::CsrMatrix;
pub use lu::{solve_once, SolveError, SparseLu};
pub use scalar::Scalar;
pub use triplet::TripletMatrix;

pub use loopscope_math::Complex64;
