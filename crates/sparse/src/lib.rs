//! Sparse matrices and a symbolic/numeric sparse LU solver for circuit
//! simulation.
//!
//! Modified nodal analysis (MNA) produces matrices that are extremely sparse
//! — each circuit element touches at most a handful of rows/columns — and the
//! stability analyses in `loopscope-spice` factor the *same pattern* hundreds
//! of times per sweep (one factorization per frequency point, Newton
//! iteration or timestep). The crate is organised around that workload:
//!
//! * [`TripletMatrix`] — a coordinate-format accumulator that element
//!   "stamps" append to; duplicate entries are summed, which matches how MNA
//!   stamps superpose. Used once per circuit structure to discover the
//!   pattern.
//! * [`CsrMatrix`] — compressed sparse row storage used for matrix-vector
//!   products and as the input to factorization. Values can be rewritten in
//!   place ([`CsrMatrix::zero_values`], [`CsrMatrix::find_slot`]) so repeated
//!   assemblies over a fixed pattern allocate nothing.
//! * [`ordering`] — fill-reducing elimination orderings (minimum degree on
//!   the `A + Aᵀ` pattern, as KLU applies to circuit matrices). Computed once
//!   per circuit structure, they keep the LU fill — and therefore the cost of
//!   every numeric refactorization — near the structural optimum.
//! * [`btf`] — block upper-triangular form (maximum transversal + Tarjan
//!   SCC, KLU's outermost structural move). Block-structured circuits —
//!   cascaded stages, buffered sub-circuits — factor as many small diagonal
//!   blocks via [`SparseLu::factor_with_symbolic_btf`], with the cross-block
//!   entries stored raw (zero fill) for the block back-substitution;
//!   irreducible patterns degenerate to the plain ordered factorization.
//!   [`SparseLu::solve_block_into`] solves a whole panel of right-hand
//!   sides per traversal — bitwise identical, column for column, to
//!   independent [`SparseLu::solve_into`] calls.
//! * [`SparseLu`] — flat-storage LU. [`SparseLu::factor`] runs partial
//!   pivoting in natural column order;
//!   [`SparseLu::factor_ordered`] eliminates columns in a fill-reducing order
//!   with KLU-style relative threshold pivoting, swapping rows only when
//!   numerics demand it. A first call to [`SparseLu::factor_with_symbolic`]
//!   (or [`SparseLu::factor_with_symbolic_ordered`]) captures the row and
//!   column permutations plus the fill pattern as a [`SymbolicLu`]; every
//!   later matrix with the same structure is factored by the numeric-only
//!   [`SparseLu::refactor`] — or, allocation-free, by
//!   [`SparseLu::refactor_into`] with a reusable [`LuWorkspace`] — which
//!   skips pivot search and fill discovery entirely and falls back to fresh
//!   pivoting only when a pivot degrades numerically. Solves are
//!   allocation-free through [`SparseLu::solve_into`].
//! * [`gmres`] — the iterative escape hatch behind the [`SolverBackend`]
//!   seam: restarted GMRES(m) over a matrix-free [`SparseOperator`],
//!   right-preconditioned by a *stale* [`SparseLu`] (the factorization of a
//!   nearby matrix, e.g. a sweep group's anchor frequency). When successive
//!   systems differ by a small perturbation, a handful of preconditioned
//!   triangular solves replaces the per-system refactorization; callers
//!   verify the returned backward error and fall back to the direct path
//!   when the Krylov iteration misses.
//!
//! The scalar abstraction [`Scalar`] is implemented for `f64` (DC and
//! transient analyses) and [`Complex64`] (AC analysis). Its `kernel_*`
//! surface routes the three numeric hot loops — the refactorization's
//! scatter/gather axpy, the substitution fold and the blocked panel update —
//! through [`kernels`], which provides an explicitly vectorized AVX2 backend
//! next to the portable scalar reference. The backend is recorded per
//! [`SymbolicLu`] at build time ([`kernels::selected_backend`], overridable
//! with the `LOOPSCOPE_KERNEL` environment knob) and the two backends are
//! bit-identical on finite data, so every determinism guarantee in the
//! workspace holds with SIMD active.
//!
//! # Example
//!
//! ```
//! use loopscope_sparse::{TripletMatrix, SparseLu};
//!
//! // 2x2 system: [2 1; 1 3]·x = [5, 10]  →  x = [1, 3]
//! let mut t = TripletMatrix::<f64>::new(2, 2);
//! t.push(0, 0, 2.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let (lu, symbolic) = SparseLu::factor_with_symbolic(&t.to_csr())?;
//! let x = lu.solve(&[5.0, 10.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
//!
//! // Same pattern, new values: numeric-only refactorization.
//! let mut t2 = TripletMatrix::<f64>::new(2, 2);
//! t2.push(0, 0, 4.0);
//! t2.push(0, 1, 1.0);
//! t2.push(1, 0, 1.0);
//! t2.push(1, 1, 5.0);
//! let lu2 = SparseLu::refactor(&symbolic, &t2.to_csr())?;
//! assert!(lu2.refactored());
//! let x2 = lu2.solve(&[5.0, 6.0])?;
//! assert!((x2[0] - 1.0).abs() < 1e-12 && (x2[1] - 1.0).abs() < 1e-12);
//! # Ok::<(), loopscope_sparse::SolveError>(())
//! ```

// `unsafe` is denied everywhere except the [`kernels`] module, which carries
// the `core::arch` SIMD intrinsics behind a scoped `#[allow(unsafe_code)]`
// (a crate-level `forbid` would make that exception impossible).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod btf;
mod csr;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod gmres;
pub mod kernels;
mod lu;
pub mod ordering;
mod scalar;
mod triplet;

pub use csr::CsrMatrix;
pub use gmres::{
    gmres_solve_into, GmresOptions, GmresOutcome, GmresWorkspace, SolverBackend, SparseOperator,
};
pub use kernels::KernelBackend;
pub use lu::{
    normwise_backward_error, solve_once, BatchLaneStatus, BatchedLu, LuWorkspace, RefineWorkspace,
    SolveError, SolveQuality, SparseLu, SymbolicLu, ORDERED_PIVOT_THRESHOLD,
    REFINE_BACKWARD_TOLERANCE, REFINE_MAX_STEPS,
};
pub use scalar::Scalar;
pub use triplet::TripletMatrix;

pub use loopscope_math::Complex64;
