//! Restarted GMRES(m) over a matrix-free operator, preconditioned by a
//! (possibly **stale**) [`SparseLu`] factorization.
//!
//! Direct LU fill grows superlinearly on 2-D mesh patterns, so sweeps over
//! large power-grid-style systems cannot afford a numeric refactorization at
//! every point. This module is the escape hatch: a right-preconditioned
//! GMRES(m) with modified Gram-Schmidt Arnoldi and Givens-rotation least
//! squares, generic over [`Scalar`] (real DC/transient systems and complex
//! AC systems alike), whose preconditioner is whatever `SparseLu` the caller
//! already holds — typically the factorization of a *nearby* sweep point.
//! Because the preconditioner is applied on the right, the Arnoldi residual
//! **is** the true residual of `A·x = b`, so the convergence test needs no
//! un-preconditioning.
//!
//! Determinism: every loop in this module runs in a fixed order with no
//! data races, so for identical operator values, preconditioner values and
//! right-hand side the iteration count, the residual history and the
//! returned solution are bitwise reproducible. The chunk-invariance of
//! sweep-level results is the caller's job (`loopscope-spice` pins the
//! preconditioner to a deterministic *anchor* point per sweep index).

use crate::csr::CsrMatrix;
use crate::lu::{backward_error, inf_norm, SolveError, SparseLu};
use crate::scalar::Scalar;

/// A square linear operator exposing the matrix-vector product `y = A·x` —
/// the only access GMRES needs, so iterative solves never require the
/// operator's entries to be materialized beyond what the caller stores.
pub trait SparseOperator<T: Scalar> {
    /// Dimension `n` of the square operator.
    fn dim(&self) -> usize;

    /// Computes `y = A·x`. `x` and `y` have length [`dim`](Self::dim);
    /// implementations must not read `y`'s prior contents.
    fn apply(&self, x: &[T], y: &mut [T]);

    /// ∞-norm of the operator (max row sum of [`Scalar::modulus_l1`] entry
    /// magnitudes) — the same norm the direct refined path uses, so the
    /// backward errors of the two backends are directly comparable.
    fn inf_norm(&self) -> f64;
}

impl<T: Scalar> SparseOperator<T> for CsrMatrix<T> {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols(), "operator apply: x length mismatch");
        assert_eq!(y.len(), self.rows(), "operator apply: y length mismatch");
        for (row, slot) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (c, v) in self.row_entries(row) {
                acc += v * x[c];
            }
            *slot = acc;
        }
    }

    fn inf_norm(&self) -> f64 {
        let mut norm = 0.0f64;
        for row in 0..self.rows() {
            let srow: f64 = self.row_entries(row).map(|(_, v)| v.modulus_l1()).sum();
            if srow > norm {
                norm = srow;
            }
        }
        norm
    }
}

/// Which linear-solver backend a solve routes through — the seam every
/// `loopscope-spice` driver (AC sweeps, DC Newton, transient, batch Monte
/// Carlo) threads its solves over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverBackend {
    /// The direct sparse LU path: numeric refactorization at every point,
    /// residual-verified with iterative refinement. The default, and the
    /// fallback whenever the iterative path misses its tolerance.
    Direct,
    /// Restarted GMRES(m) preconditioned by a stale LU factorization; the
    /// factorization is refreshed only every K-th sweep point, so the
    /// symbolic-reuse machinery doubles as a preconditioner factory.
    Iterative {
        /// Krylov basis size per restart cycle.
        m: usize,
        /// Maximum number of restart cycles before giving up (the direct
        /// ladder then takes over).
        max_restarts: usize,
        /// Relative 2-norm residual target: converged when
        /// `‖b − A·x‖₂ ≤ rtol·‖b‖₂`.
        rtol: f64,
    },
}

impl SolverBackend {
    /// The iterative backend with default parameters: a 32-vector Krylov
    /// basis, up to 4 restart cycles, and a 1e-10 relative residual target
    /// (comfortably below the spice layer's backward-error acceptance
    /// threshold on well-scaled MNA systems).
    pub fn iterative_default() -> Self {
        SolverBackend::Iterative {
            m: 32,
            max_restarts: 4,
            rtol: 1.0e-10,
        }
    }

    /// `true` for the [`SolverBackend::Iterative`] variant.
    pub fn is_iterative(&self) -> bool {
        matches!(self, SolverBackend::Iterative { .. })
    }

    /// The GMRES options of an iterative backend, `None` for
    /// [`SolverBackend::Direct`].
    pub fn gmres_options(&self) -> Option<GmresOptions> {
        match *self {
            SolverBackend::Direct => None,
            SolverBackend::Iterative {
                m,
                max_restarts,
                rtol,
            } => Some(GmresOptions {
                m,
                max_restarts,
                rtol,
            }),
        }
    }
}

/// Parameters of a restarted GMRES(m) solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOptions {
    /// Krylov basis size per restart cycle (inner iterations before the
    /// basis is collapsed into the running solution).
    pub m: usize,
    /// Maximum number of restart cycles.
    pub max_restarts: usize,
    /// Relative 2-norm residual target.
    pub rtol: f64,
}

impl Default for GmresOptions {
    fn default() -> Self {
        SolverBackend::iterative_default()
            .gmres_options()
            .expect("iterative_default is iterative")
    }
}

/// Outcome of a [`gmres_solve_into`] call: the iteration/restart counts the
/// sweep statistics aggregate and the final **true-residual** quality of the
/// returned solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOutcome {
    /// Total Arnoldi iterations across all restart cycles.
    pub iterations: usize,
    /// Restart cycles beyond the first (0 when the first cycle converged).
    pub restarts: usize,
    /// ∞-norm of the final true residual `b − A·x` (matches the norm
    /// reported by the direct path's `SolveQuality`).
    pub residual_norm: f64,
    /// Normwise backward error `‖r‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` of the returned
    /// solution — the same rule as the direct refined path, so the caller
    /// can apply an identical accept/escalate test.
    pub backward_error: f64,
    /// Whether the 2-norm residual reached `rtol·‖b‖₂`.
    pub converged: bool,
}

/// Reusable scratch for [`gmres_solve_into`]: the Krylov basis, Hessenberg
/// column store, rotation coefficients and the various length-`n` work
/// vectors. Create one next to the solve loop (or use
/// [`GmresWorkspace::for_dims`] to pre-size); buffers grow on first use and
/// are reused allocation-free afterwards.
#[derive(Debug, Clone)]
pub struct GmresWorkspace<T: Scalar> {
    /// Flat Krylov basis: column `j` lives at `[j*n .. (j+1)*n]`.
    basis: Vec<T>,
    /// Hessenberg columns, `(m+1)`-stride: `H[i][j]` at `h[i + j*(m+1)]`.
    h: Vec<T>,
    /// Rotated residual vector `g` of the least-squares problem.
    g: Vec<T>,
    /// Givens cosines (real by construction).
    cs: Vec<f64>,
    /// Givens sines (complex in the complex field).
    sn: Vec<T>,
    /// Triangular-solve solution of the least-squares problem.
    y: Vec<T>,
    /// Running solution iterate.
    x: Vec<T>,
    /// Saved right-hand side (the caller's `rhs` is overwritten with `x`).
    b: Vec<T>,
    /// Residual / Arnoldi candidate vector.
    r: Vec<T>,
    /// Preconditioned vector `M⁻¹·v`.
    z: Vec<T>,
    /// Substitution scratch for the preconditioner's `solve_into`.
    lu_work: Vec<T>,
}

impl<T: Scalar> Default for GmresWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> GmresWorkspace<T> {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            basis: Vec::new(),
            h: Vec::new(),
            g: Vec::new(),
            cs: Vec::new(),
            sn: Vec::new(),
            y: Vec::new(),
            x: Vec::new(),
            b: Vec::new(),
            r: Vec::new(),
            z: Vec::new(),
            lu_work: Vec::new(),
        }
    }

    /// Creates a workspace pre-sized for dimension `n` and basis size `m`,
    /// so even the first solve over it performs no heap allocation.
    pub fn for_dims(n: usize, m: usize) -> Self {
        let mut ws = Self::new();
        ws.resize(n, m);
        ws
    }

    fn resize(&mut self, n: usize, m: usize) {
        self.basis.resize(n * (m + 1), T::ZERO);
        self.h.resize((m + 1) * m, T::ZERO);
        self.g.resize(m + 1, T::ZERO);
        self.cs.resize(m, 0.0);
        self.sn.resize(m, T::ZERO);
        self.y.resize(m, T::ZERO);
        self.x.resize(n, T::ZERO);
        self.b.resize(n, T::ZERO);
        self.r.resize(n, T::ZERO);
        self.z.resize(n, T::ZERO);
        self.lu_work.resize(n, T::ZERO);
    }
}

/// Euclidean norm with a fixed sequential summation order (deterministic).
fn norm2<T: Scalar>(v: &[T]) -> f64 {
    let mut acc = 0.0f64;
    for &x in v {
        acc += x.modulus_sqr();
    }
    acc.sqrt()
}

/// Conjugated dot product `⟨u, w⟩ = Σ conj(uₖ)·wₖ` in a fixed order.
fn dot_conj<T: Scalar>(u: &[T], w: &[T]) -> T {
    let mut acc = T::ZERO;
    for (&a, &b) in u.iter().zip(w) {
        acc += a.conj() * b;
    }
    acc
}

/// Complex-capable Givens rotation annihilating `b` against `a`: returns
/// `(c, s, r)` with real `c` such that `c·a + s·b = r` and
/// `−conj(s)·a + c·b = 0`, `|r| = √(|a|² + |b|²)`.
fn givens<T: Scalar>(a: T, b: T) -> (f64, T, T) {
    let am = a.modulus();
    let bm = b.modulus();
    if bm == 0.0 {
        return (1.0, T::ZERO, a);
    }
    let d = (am * am + bm * bm).sqrt();
    if am == 0.0 {
        // Pure swap: r picks up b's magnitude.
        let s = b.conj() * T::from_f64(1.0 / bm);
        return (0.0, s, T::from_f64(bm));
    }
    let c = am / d;
    // Phase of a, reused so r = (a/|a|)·d keeps a's phase.
    let ua = a * T::from_f64(1.0 / am);
    let s = ua * b.conj() * T::from_f64(1.0 / d);
    (c, s, ua * T::from_f64(d))
}

/// Solves `A·x = b` by restarted GMRES(m), right-preconditioned by `precond`
/// (an existing — possibly stale — LU factorization applied via
/// [`SparseLu::solve_into`]). `rhs` holds `b` on entry and the best solution
/// iterate on return, whether or not the solve converged; the caller decides
/// acceptance from the returned [`GmresOutcome`] (typically by comparing
/// `backward_error` against its direct-path tolerance).
///
/// The initial guess is always `x₀ = 0`, so identical inputs produce an
/// identical iteration history — determinism the sweep drivers rely on.
///
/// # Errors
///
/// Returns [`SolveError::RhsLength`] when `rhs` does not match the operator
/// dimension, and propagates any error from the preconditioner's
/// `solve_into`.
///
/// # Panics
///
/// Panics when `precond` is an unfilled
/// [`from_symbolic`](SparseLu::from_symbolic) shell or its dimension does
/// not match the operator.
pub fn gmres_solve_into<T: Scalar>(
    op: &impl SparseOperator<T>,
    precond: &SparseLu<T>,
    rhs: &mut [T],
    opts: &GmresOptions,
    ws: &mut GmresWorkspace<T>,
) -> Result<GmresOutcome, SolveError> {
    let n = op.dim();
    let m = opts.m.max(1);
    if rhs.len() != n {
        return Err(SolveError::RhsLength {
            expected: n,
            got: rhs.len(),
        });
    }
    assert_eq!(precond.dim(), n, "preconditioner dimension mismatch");
    ws.resize(n, m);
    ws.b[..n].copy_from_slice(rhs);
    ws.x[..n].fill(T::ZERO);

    let norm_b = norm2(&ws.b[..n]);
    let mut iterations = 0usize;
    let mut cycles = 0usize;
    let mut converged = false;

    if norm_b == 0.0 {
        // A zero right-hand side has the exact solution x = 0.
        rhs.fill(T::ZERO);
        return Ok(GmresOutcome {
            iterations: 0,
            restarts: 0,
            residual_norm: 0.0,
            backward_error: 0.0,
            converged: true,
        });
    }
    let target = opts.rtol * norm_b;

    'outer: loop {
        // True residual r = b − A·x (the first cycle starts from x = 0, so
        // r = b without an operator application).
        if cycles == 0 {
            ws.r[..n].copy_from_slice(&ws.b[..n]);
        } else {
            op.apply(&ws.x[..n], &mut ws.r[..n]);
            for i in 0..n {
                ws.r[i] = ws.b[i] - ws.r[i];
            }
        }
        let beta = norm2(&ws.r[..n]);
        if !beta.is_finite() {
            break;
        }
        if beta <= target {
            converged = true;
            break;
        }
        if cycles == opts.max_restarts.max(1) {
            break;
        }
        cycles += 1;

        // v₀ = r/β; g = (β, 0, …).
        let inv_beta = T::from_f64(1.0 / beta);
        for i in 0..n {
            ws.basis[i] = ws.r[i] * inv_beta;
        }
        ws.g[..m + 1].fill(T::ZERO);
        ws.g[0] = T::from_f64(beta);

        let mut k = 0usize;
        for j in 0..m {
            // z = M⁻¹·v_j, w = A·z.
            ws.z[..n].copy_from_slice(&ws.basis[j * n..(j + 1) * n]);
            precond.solve_into(&mut ws.z[..n], &mut ws.lu_work[..n])?;
            op.apply(&ws.z[..n], &mut ws.r[..n]);

            // Modified Gram-Schmidt against the basis built so far.
            let col = j * (m + 1);
            for i in 0..=j {
                let vi = &ws.basis[i * n..(i + 1) * n];
                let hij = dot_conj(vi, &ws.r[..n]);
                ws.h[col + i] = hij;
                for (slot, &v) in ws.r[..n].iter_mut().zip(vi) {
                    *slot -= hij * v;
                }
            }
            let hnext = norm2(&ws.r[..n]);
            if !hnext.is_finite() {
                // Non-finite data (a NaN stamp reached the operator or the
                // preconditioner): abandon the cycle; the caller's direct
                // ladder surfaces the structured error.
                break 'outer;
            }
            ws.h[col + j + 1] = T::from_f64(hnext);
            if hnext > 0.0 {
                let inv = T::from_f64(1.0 / hnext);
                for i in 0..n {
                    ws.basis[(j + 1) * n + i] = ws.r[i] * inv;
                }
            }

            // Fold the previous rotations into the new column, then mint the
            // rotation that annihilates the subdiagonal.
            for i in 0..j {
                let a = ws.h[col + i];
                let b = ws.h[col + i + 1];
                let c = T::from_f64(ws.cs[i]);
                let s = ws.sn[i];
                ws.h[col + i] = c * a + s * b;
                ws.h[col + i + 1] = c * b - s.conj() * a;
            }
            let (c, s, rdiag) = givens(ws.h[col + j], ws.h[col + j + 1]);
            ws.cs[j] = c;
            ws.sn[j] = s;
            ws.h[col + j] = rdiag;
            ws.h[col + j + 1] = T::ZERO;
            let gj = ws.g[j];
            ws.g[j] = T::from_f64(c) * gj;
            ws.g[j + 1] = -(s.conj() * gj);

            iterations += 1;
            k = j + 1;
            let est = ws.g[j + 1].modulus();
            if est <= target || hnext == 0.0 {
                break;
            }
        }

        // Back-substitute the k×k triangular least-squares system H·y = g.
        for i in (0..k).rev() {
            let mut acc = ws.g[i];
            for l in i + 1..k {
                acc -= ws.h[l * (m + 1) + i] * ws.y[l];
            }
            let diag = ws.h[i * (m + 1) + i];
            if diag.is_zero() {
                // Exactly singular projected system — no update possible.
                break 'outer;
            }
            ws.y[i] = acc / diag;
        }

        // x += M⁻¹·(V·y): combine the basis, un-precondition, accumulate.
        ws.z[..n].fill(T::ZERO);
        for (l, &yl) in ws.y[..k].iter().enumerate() {
            let vl = &ws.basis[l * n..(l + 1) * n];
            for (slot, &v) in ws.z[..n].iter_mut().zip(vl) {
                *slot += yl * v;
            }
        }
        precond.solve_into(&mut ws.z[..n], &mut ws.lu_work[..n])?;
        for i in 0..n {
            ws.x[i] += ws.z[i];
        }
    }

    // Final true-residual quality of the returned iterate, in the same
    // norms as the direct refined path.
    op.apply(&ws.x[..n], &mut ws.r[..n]);
    for i in 0..n {
        ws.r[i] = ws.b[i] - ws.r[i];
    }
    let residual_norm = inf_norm(&ws.r[..n]);
    let be = backward_error(
        residual_norm,
        op.inf_norm(),
        inf_norm(&ws.x[..n]),
        inf_norm(&ws.b[..n]),
    );
    rhs.copy_from_slice(&ws.x[..n]);
    Ok(GmresOutcome {
        iterations,
        restarts: cycles.saturating_sub(1),
        residual_norm,
        backward_error: be,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;
    use loopscope_math::Complex64;

    /// A p×p 2-D resistive mesh with a capacitive diagonal shift — the
    /// pattern the iterative backend exists for.
    fn mesh<T: Scalar>(p: usize, diag_scale: f64) -> CsrMatrix<T> {
        let n = p * p;
        let mut t = TripletMatrix::<T>::new(n, n);
        for i in 0..p {
            for j in 0..p {
                let u = i * p + j;
                let mut diag = T::from_f64(diag_scale * (1.0 + 0.01 * ((i + 2 * j) % 5) as f64));
                let g = T::from_f64(1.0);
                if i + 1 < p {
                    t.push(u, u + p, -g);
                    t.push(u + p, u, -g);
                    diag += g;
                }
                if i > 0 {
                    diag += g;
                }
                if j + 1 < p {
                    t.push(u, u + 1, -g);
                    t.push(u + 1, u, -g);
                    diag += g;
                }
                if j > 0 {
                    diag += g;
                }
                t.push(u, u, diag);
            }
        }
        t.to_csr()
    }

    fn rhs_of<T: Scalar>(n: usize) -> Vec<T> {
        (0..n)
            .map(|k| T::from_f64(1.0 + 0.3 * ((k % 7) as f64)))
            .collect()
    }

    #[test]
    fn exact_preconditioner_converges_immediately_real() {
        let a = mesh::<f64>(8, 0.5);
        let lu = SparseLu::factor(&a).unwrap();
        let b = rhs_of::<f64>(a.rows());
        let mut x = b.clone();
        let mut ws = GmresWorkspace::new();
        let out = gmres_solve_into(&a, &lu, &mut x, &GmresOptions::default(), &mut ws).unwrap();
        assert!(out.converged, "{out:?}");
        // With the exact LU as right preconditioner A·M⁻¹ = I: one Arnoldi
        // step (plus rounding) must suffice.
        assert!(out.iterations <= 2, "{out:?}");
        assert_eq!(out.restarts, 0);
        let direct = lu.solve(&b).unwrap();
        for (g, w) in x.iter().zip(&direct) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{g} vs {w}");
        }
        assert!(out.backward_error <= 1e-12, "{out:?}");
    }

    #[test]
    fn stale_preconditioner_converges_complex() {
        // Factor the matrix at one "frequency", solve at a nearby one — the
        // production stale-anchor shape.
        let a0 = mesh::<Complex64>(8, 0.5);
        let a1 = {
            let p = 8;
            let n = p * p;
            let mut t = TripletMatrix::<Complex64>::new(n, n);
            for r in 0..n {
                for (c, v) in a0.row_entries(r) {
                    let v = if r == c {
                        v + Complex64::new(0.0, 0.08)
                    } else {
                        v
                    };
                    t.push(r, c, v);
                }
            }
            t.to_csr()
        };
        let lu = SparseLu::factor(&a0).unwrap();
        let b = rhs_of::<Complex64>(a1.rows());
        let mut x = b.clone();
        let mut ws = GmresWorkspace::new();
        let out = gmres_solve_into(&a1, &lu, &mut x, &GmresOptions::default(), &mut ws).unwrap();
        assert!(out.converged, "{out:?}");
        assert!(out.iterations >= 1 && out.iterations <= 32, "{out:?}");
        let exact = SparseLu::factor(&a1).unwrap().solve(&b).unwrap();
        for (g, w) in x.iter().zip(&exact) {
            assert!((*g - *w).abs() <= 1e-8 * w.abs().max(1.0), "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn identical_inputs_give_bitwise_identical_runs() {
        let a = mesh::<Complex64>(10, 0.25);
        let shifted = {
            let n = a.rows();
            let mut t = TripletMatrix::<Complex64>::new(n, n);
            for r in 0..n {
                for (c, v) in a.row_entries(r) {
                    let v = if r == c {
                        v + Complex64::new(0.0, 0.15)
                    } else {
                        v
                    };
                    t.push(r, c, v);
                }
            }
            t.to_csr()
        };
        let lu = SparseLu::factor(&a).unwrap();
        let b = rhs_of::<Complex64>(a.rows());
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut x = b.clone();
            let mut ws = GmresWorkspace::new();
            let out =
                gmres_solve_into(&shifted, &lu, &mut x, &GmresOptions::default(), &mut ws).unwrap();
            runs.push((x, out));
        }
        assert_eq!(runs[0].1.iterations, runs[1].1.iterations);
        assert_eq!(runs[0].1.restarts, runs[1].1.restarts);
        assert_eq!(
            runs[0].1.residual_norm.to_bits(),
            runs[1].1.residual_norm.to_bits()
        );
        for (p, q) in runs[0].0.iter().zip(&runs[1].0) {
            assert_eq!(p.re.to_bits(), q.re.to_bits());
            assert_eq!(p.im.to_bits(), q.im.to_bits());
        }
    }

    #[test]
    fn zero_rhs_returns_zero_without_iterating() {
        let a = mesh::<f64>(4, 1.0);
        let lu = SparseLu::factor(&a).unwrap();
        let mut x = vec![0.0f64; a.rows()];
        let mut ws = GmresWorkspace::new();
        let out = gmres_solve_into(&a, &lu, &mut x, &GmresOptions::default(), &mut ws).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(x.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn rhs_length_mismatch_is_an_error() {
        let a = mesh::<f64>(4, 1.0);
        let lu = SparseLu::factor(&a).unwrap();
        let mut short = vec![1.0f64; a.rows() - 1];
        let mut ws = GmresWorkspace::new();
        let err =
            gmres_solve_into(&a, &lu, &mut short, &GmresOptions::default(), &mut ws).unwrap_err();
        assert!(matches!(err, SolveError::RhsLength { .. }), "{err:?}");
    }

    #[test]
    fn non_finite_rhs_reports_unconverged() {
        let a = mesh::<f64>(4, 1.0);
        let lu = SparseLu::factor(&a).unwrap();
        let mut x = vec![f64::NAN; a.rows()];
        let mut ws = GmresWorkspace::new();
        let out = gmres_solve_into(&a, &lu, &mut x, &GmresOptions::default(), &mut ws).unwrap();
        assert!(!out.converged, "{out:?}");
        assert!(out.backward_error.is_infinite(), "{out:?}");
    }

    #[test]
    fn hard_iterative_case_uses_restarts_then_succeeds() {
        // A badly stale preconditioner (large diagonal shift) forces real
        // Arnoldi work; a tiny basis forces restart cycles.
        let a = mesh::<f64>(8, 0.5);
        let shifted = {
            let n = a.rows();
            let mut t = TripletMatrix::<f64>::new(n, n);
            for r in 0..n {
                for (c, v) in a.row_entries(r) {
                    t.push(r, c, if r == c { v + 1.5 } else { v });
                }
            }
            t.to_csr()
        };
        let lu = SparseLu::factor(&a).unwrap();
        let b = rhs_of::<f64>(a.rows());
        let mut x = b.clone();
        let mut ws = GmresWorkspace::new();
        let opts = GmresOptions {
            m: 4,
            max_restarts: 20,
            rtol: 1.0e-12,
        };
        let out = gmres_solve_into(&shifted, &lu, &mut x, &opts, &mut ws).unwrap();
        assert!(out.converged, "{out:?}");
        assert!(out.restarts >= 1, "tiny basis must restart: {out:?}");
        let exact = SparseLu::factor(&shifted).unwrap().solve(&b).unwrap();
        for (g, w) in x.iter().zip(&exact) {
            assert!((g - w).abs() <= 1e-8 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn backend_enum_helpers() {
        assert!(!SolverBackend::Direct.is_iterative());
        assert!(SolverBackend::Direct.gmres_options().is_none());
        let it = SolverBackend::iterative_default();
        assert!(it.is_iterative());
        let opts = it.gmres_options().unwrap();
        assert_eq!(opts.m, 32);
        assert_eq!(opts.max_restarts, 4);
        assert_eq!(opts.rtol, 1.0e-10);
    }
}
