//! Scalar abstraction over real and complex arithmetic.

use loopscope_math::Complex64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// The scalar field a sparse matrix is defined over.
///
/// Implemented for `f64` (DC, transient) and [`Complex64`] (AC). The trait is
/// sealed in spirit: downstream crates are not expected to implement it.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Magnitude used for pivot selection and singularity checks.
    fn modulus(self) -> f64;

    /// Embeds a real number into the scalar field.
    fn from_f64(x: f64) -> Self;

    /// Returns `true` when the value is exactly zero.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
}

impl Scalar for Complex64 {
    const ZERO: Self = Complex64::ZERO;
    const ONE: Self = Complex64::ONE;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn from_f64(x: f64) -> Self {
        Complex64::from_real(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_scalar_basics() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        assert_eq!((-3.0f64).modulus(), 3.0);
        assert!(f64::ZERO.is_zero());
        assert!(!f64::ONE.is_zero());
        assert_eq!(f64::from_f64(2.5), 2.5);
    }

    #[test]
    fn complex_scalar_basics() {
        assert!(Complex64::ZERO.is_zero());
        assert!(!Complex64::I.is_zero());
        assert!((Complex64::new(3.0, 4.0).modulus() - 5.0).abs() < 1e-15);
        assert_eq!(Complex64::from_f64(1.5), Complex64::new(1.5, 0.0));
    }
}
