//! Scalar abstraction over real and complex arithmetic, including the
//! kernel dispatch surface the LU hot loops run on.

use crate::kernels::{self, KernelBackend};
use loopscope_math::Complex64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// The scalar field a sparse matrix is defined over.
///
/// Implemented for `f64` (DC, transient) and [`Complex64`] (AC). The trait is
/// sealed in spirit: downstream crates are not expected to implement it.
///
/// Besides the basic field operations, the trait carries the **kernel
/// surface** of the LU hot loops: the `kernel_*` associated functions route
/// the scatter/gather axpy of the numeric refactorization, the substitution
/// fold and the blocked panel updates through [`crate::kernels`], where
/// `f64` and [`Complex64`] dispatch to the explicitly vectorized AVX2 path
/// when the factorization's recorded [`KernelBackend`] asks for it. The
/// default implementations are the portable scalar reference loops, and the
/// SIMD overrides are **bit-identical** to them on finite data (same IEEE
/// operations, same per-element order — see the [`crate::kernels`] module
/// docs for the contract).
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Magnitude used for pivot selection and singularity checks.
    fn modulus(self) -> f64;

    /// Squared magnitude — no square root / `hypot`, so it is the cheap form
    /// the magnitude argmax scans run on. Unlike [`modulus`](Scalar::modulus)
    /// it is subject to premature underflow (|z| ≲ 1e-154 squares to a
    /// subnormal or zero) and overflow (|z| ≳ 1e154 squares to infinity);
    /// callers must fall back to `modulus` when the winning square
    /// degenerates.
    fn modulus_sqr(self) -> f64;

    /// `true` when every component of the value is finite (neither NaN nor
    /// ±∞). Non-finite values silently escape magnitude scans and pivot
    /// comparisons (every NaN comparison is false), so the factorizations
    /// check this explicitly.
    fn is_finite(self) -> bool;

    /// Complex conjugate (the identity for real scalars) — used by the
    /// adjoint substitution sweeps of the condition estimator.
    fn conj(self) -> Self;

    /// Cheap magnitude surrogate for norm *estimates*: `|re| + |im|` for
    /// complex values, `|x|` for real ones. Within √2 of
    /// [`modulus`](Scalar::modulus), with no `hypot` and no intermediate
    /// under/overflow — good enough for the backward-error denominator of
    /// the refined solves, where a constant-factor-accurate scale is all
    /// that is needed.
    fn modulus_l1(self) -> f64;

    /// Embeds a real number into the scalar field.
    fn from_f64(x: f64) -> Self;

    /// Returns `true` when the value is exactly zero.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// `work[cols[i]] -= mult * vals[i]` for every `i` — the scatter/gather
    /// axpy of the numeric refactorization's left-looking elimination.
    #[inline]
    fn kernel_axpy_indexed(
        _backend: KernelBackend,
        mult: Self,
        vals: &[Self],
        cols: &[usize],
        work: &mut [Self],
    ) {
        kernels::scalar::axpy_indexed(mult, vals, cols, work);
    }

    /// Returns `acc − Σ vals[i]·work[cols[i]]`, subtracting strictly in
    /// index order — the per-entry update of the substitution sweeps.
    #[inline]
    fn kernel_fold_sub_indexed(
        _backend: KernelBackend,
        acc: Self,
        vals: &[Self],
        cols: &[usize],
        work: &[Self],
    ) -> Self {
        kernels::scalar::fold_sub_indexed(acc, vals, cols, work)
    }

    /// `dst[j] -= v * src[j]` over the common length — the k-wide panel
    /// update of the blocked multi-RHS solve (lane = RHS column).
    #[inline]
    fn kernel_panel_axpy(_backend: KernelBackend, v: Self, src: &[Self], dst: &mut [Self]) {
        kernels::scalar::panel_axpy(v, src, dst);
    }

    /// `dst[j] = dst[j] / diag` for every panel lane.
    #[inline]
    fn kernel_panel_div(_backend: KernelBackend, diag: Self, dst: &mut [Self]) {
        kernels::scalar::panel_div(diag, dst);
    }

    /// `dst[w] -= a[w] * b[w]` elementwise — the w-wide variant-lane update
    /// of the batched many-variant refactor/solve, where every lane is an
    /// independent matrix sharing only the fill pattern (so each lane has
    /// its own multiplier/factor pair).
    #[inline]
    fn kernel_lane_mul_sub(_backend: KernelBackend, a: &[Self], b: &[Self], dst: &mut [Self]) {
        kernels::scalar::lane_mul_sub(a, b, dst);
    }

    /// `dst[w] = dst[w] / den[w]` elementwise — the batched
    /// back-substitution divide, one independent diagonal per variant lane.
    #[inline]
    fn kernel_lane_div(_backend: KernelBackend, den: &[Self], dst: &mut [Self]) {
        kernels::scalar::lane_div(den, dst);
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn modulus_sqr(self) -> f64 {
        self * self
    }

    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn conj(self) -> Self {
        self
    }

    #[inline]
    fn modulus_l1(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }

    #[inline]
    fn kernel_axpy_indexed(
        backend: KernelBackend,
        mult: Self,
        vals: &[Self],
        cols: &[usize],
        work: &mut [Self],
    ) {
        kernels::axpy_indexed_f64(backend, mult, vals, cols, work);
    }

    #[inline]
    fn kernel_fold_sub_indexed(
        backend: KernelBackend,
        acc: Self,
        vals: &[Self],
        cols: &[usize],
        work: &[Self],
    ) -> Self {
        kernels::fold_sub_indexed_f64(backend, acc, vals, cols, work)
    }

    #[inline]
    fn kernel_panel_axpy(backend: KernelBackend, v: Self, src: &[Self], dst: &mut [Self]) {
        kernels::panel_axpy_f64(backend, v, src, dst);
    }

    #[inline]
    fn kernel_panel_div(backend: KernelBackend, diag: Self, dst: &mut [Self]) {
        kernels::panel_div_f64(backend, diag, dst);
    }

    #[inline]
    fn kernel_lane_mul_sub(backend: KernelBackend, a: &[Self], b: &[Self], dst: &mut [Self]) {
        kernels::lane_mul_sub_f64(backend, a, b, dst);
    }

    #[inline]
    fn kernel_lane_div(backend: KernelBackend, den: &[Self], dst: &mut [Self]) {
        kernels::lane_div_f64(backend, den, dst);
    }
}

impl Scalar for Complex64 {
    const ZERO: Self = Complex64::ZERO;
    const ONE: Self = Complex64::ONE;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn modulus_sqr(self) -> f64 {
        self.norm_sqr()
    }

    #[inline]
    fn is_finite(self) -> bool {
        Complex64::is_finite(self)
    }

    #[inline]
    fn conj(self) -> Self {
        Complex64::conj(self)
    }

    #[inline]
    fn modulus_l1(self) -> f64 {
        self.re.abs() + self.im.abs()
    }

    #[inline]
    fn from_f64(x: f64) -> Self {
        Complex64::from_real(x)
    }

    #[inline]
    fn kernel_axpy_indexed(
        backend: KernelBackend,
        mult: Self,
        vals: &[Self],
        cols: &[usize],
        work: &mut [Self],
    ) {
        kernels::axpy_indexed_c64(backend, mult, vals, cols, work);
    }

    #[inline]
    fn kernel_fold_sub_indexed(
        backend: KernelBackend,
        acc: Self,
        vals: &[Self],
        cols: &[usize],
        work: &[Self],
    ) -> Self {
        kernels::fold_sub_indexed_c64(backend, acc, vals, cols, work)
    }

    #[inline]
    fn kernel_panel_axpy(backend: KernelBackend, v: Self, src: &[Self], dst: &mut [Self]) {
        kernels::panel_axpy_c64(backend, v, src, dst);
    }

    #[inline]
    fn kernel_panel_div(backend: KernelBackend, diag: Self, dst: &mut [Self]) {
        kernels::panel_div_c64(backend, diag, dst);
    }

    #[inline]
    fn kernel_lane_mul_sub(backend: KernelBackend, a: &[Self], b: &[Self], dst: &mut [Self]) {
        kernels::lane_mul_sub_c64(backend, a, b, dst);
    }

    #[inline]
    fn kernel_lane_div(backend: KernelBackend, den: &[Self], dst: &mut [Self]) {
        kernels::lane_div_c64(backend, den, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_scalar_basics() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        assert_eq!((-3.0f64).modulus(), 3.0);
        assert!(f64::ZERO.is_zero());
        assert!(!f64::ONE.is_zero());
        assert_eq!(f64::from_f64(2.5), 2.5);
        assert_eq!((-3.0f64).modulus_sqr(), 9.0);
        assert_eq!(Scalar::conj(-3.0f64), -3.0);
        assert_eq!((-3.0f64).modulus_l1(), 3.0);
        assert!(Scalar::is_finite(1.0f64));
        assert!(!Scalar::is_finite(f64::NAN));
        assert!(!Scalar::is_finite(f64::INFINITY));
        // The documented hazard: modulus is exact where the square underflows.
        assert_eq!((1.0e-200f64).modulus_sqr(), 0.0);
        assert_eq!((1.0e-200f64).modulus(), 1.0e-200);
    }

    #[test]
    fn complex_scalar_basics() {
        assert!(Complex64::ZERO.is_zero());
        assert!(!Complex64::I.is_zero());
        assert!((Complex64::new(3.0, 4.0).modulus() - 5.0).abs() < 1e-15);
        assert_eq!(Complex64::from_f64(1.5), Complex64::new(1.5, 0.0));
        assert_eq!(Complex64::new(3.0, 4.0).modulus_sqr(), 25.0);
        assert_eq!(Complex64::new(3.0, -4.0).modulus_l1(), 7.0);
        assert_eq!(
            Scalar::conj(Complex64::new(3.0, 4.0)),
            Complex64::new(3.0, -4.0)
        );
        assert!(Scalar::is_finite(Complex64::new(1.0, 2.0)));
        assert!(!Scalar::is_finite(Complex64::new(1.0, f64::NAN)));
        assert!(!Scalar::is_finite(Complex64::new(f64::INFINITY, 0.0)));
    }
}
