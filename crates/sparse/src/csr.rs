//! Compressed sparse row (CSR) matrix storage.

use crate::scalar::Scalar;
use std::collections::BTreeMap;

/// An immutable sparse matrix in compressed sparse row format.
///
/// Construct one through [`TripletMatrix::to_csr`](crate::TripletMatrix::to_csr).
///
/// ```
/// use loopscope_sparse::TripletMatrix;
/// let mut t = TripletMatrix::<f64>::new(2, 3);
/// t.push(0, 0, 1.0);
/// t.push(0, 2, 2.0);
/// t.push(1, 1, 3.0);
/// let m = t.to_csr();
/// assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix from entries already sorted by `(row, col)` with no
    /// duplicates (the `BTreeMap` ordering guarantees both).
    pub(crate) fn from_sorted_entries(
        rows: usize,
        cols: usize,
        entries: BTreeMap<(usize, usize), T>,
    ) -> Self {
        let nnz = entries.len();
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for (&(r, c), &v) in &entries {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Creates an empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at `(row, col)`, or zero if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        match self.col_idx[start..end].binary_search(&col) {
            Ok(pos) => self.values[start + pos],
            Err(_) => T::ZERO,
        }
    }

    /// The column indices of the stored entries of a row — the row's
    /// sparsity pattern, without the values.
    ///
    /// Used by the structural analyses (fill-reducing ordering, pattern
    /// comparison) that must not depend on numeric values.
    #[inline]
    pub fn row_pattern(&self, row: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[row]..self.row_ptr[row + 1]]
    }

    /// Iterates over the stored entries of a row as `(col, value)` pairs.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        self.col_idx[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Iterates over all stored entries as `(row, col, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |r| self.row_entries(r).map(move |(c, v)| (r, c, v)))
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![T::ZERO; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        y
    }

    /// Largest entry magnitude, or zero for an empty matrix. Useful for
    /// conditioning diagnostics.
    pub fn max_modulus(&self) -> f64 {
        self.values.iter().map(|v| v.modulus()).fold(0.0, f64::max)
    }

    /// Returns the storage index of the entry at `(row, col)`, or `None` when
    /// the position is not part of the sparsity pattern.
    ///
    /// Together with [`values_mut`](CsrMatrix::values_mut) this lets repeated
    /// assemblies over a fixed pattern overwrite values in place instead of
    /// rebuilding the matrix.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn find_slot(&self, row: usize, col: usize) -> Option<usize> {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        self.col_idx[start..end]
            .binary_search(&col)
            .ok()
            .map(|pos| start + pos)
    }

    /// Mutable access to the stored values, in the same order as
    /// [`find_slot`](CsrMatrix::find_slot) indexes them. The sparsity pattern
    /// itself is immutable.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Resets every stored value to zero, keeping the pattern. The first step
    /// of an in-place re-assembly.
    pub fn zero_values(&mut self) {
        self.values.fill(T::ZERO);
    }

    /// Returns `true` when `other` has the identical sparsity pattern
    /// (dimensions, row pointers and column indices).
    pub fn same_pattern(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;
    use loopscope_math::Complex64;

    fn sample() -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(0, 2, -1.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t.to_csr()
    }

    #[test]
    fn structure_and_get() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0 - 3.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<(usize, usize, f64)> = m.iter().collect();
        assert_eq!(entries.len(), 5);
        assert!(entries.contains(&(2, 0, 4.0)));
    }

    #[test]
    fn zeros_matrix() {
        let m = CsrMatrix::<f64>::zeros(2, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.mul_vec(&[1.0; 4]), vec![0.0, 0.0]);
        assert_eq!(m.max_modulus(), 0.0);
    }

    #[test]
    fn complex_mul_vec() {
        let mut t = TripletMatrix::<Complex64>::new(2, 2);
        t.push(0, 0, Complex64::I);
        t.push(1, 1, Complex64::new(2.0, 0.0));
        let m = t.to_csr();
        let y = m.mul_vec(&[Complex64::ONE, Complex64::I]);
        assert_eq!(y[0], Complex64::I);
        assert_eq!(y[1], Complex64::new(0.0, 2.0));
    }

    #[test]
    fn max_modulus() {
        let m = sample();
        assert_eq!(m.max_modulus(), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(3, 0);
    }

    #[test]
    fn find_slot_addresses_values() {
        let mut m = sample();
        let slot = m.find_slot(2, 2).unwrap();
        m.values_mut()[slot] = 7.5;
        assert_eq!(m.get(2, 2), 7.5);
        assert_eq!(m.find_slot(0, 1), None);
    }

    #[test]
    fn zero_values_keeps_pattern() {
        let mut m = sample();
        m.zero_values();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 0.0);
        assert!(m.find_slot(0, 2).is_some());
    }

    #[test]
    fn same_pattern_ignores_values() {
        let a = sample();
        let mut b = sample();
        b.zero_values();
        assert!(a.same_pattern(&b));
        let c = CsrMatrix::<f64>::zeros(3, 3);
        assert!(!a.same_pattern(&c));
    }
}
