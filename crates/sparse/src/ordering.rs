//! Fill-reducing elimination orderings for sparse LU factorization.
//!
//! The amount of fill-in an LU factorization produces — and therefore the
//! cost of every numeric refactorization that reuses its pattern — depends
//! dramatically on the order in which unknowns are eliminated. Plain partial
//! pivoting picks pivots purely by magnitude, which on banded or mesh-like
//! MNA matrices can be far from fill-optimal.
//!
//! This module computes a **minimum-degree ordering on the pattern of
//! `A + Aᵀ`** ([`min_degree_order`]), the same family of symmetric
//! fill-reducing orderings (AMD) that KLU applies to circuit matrices before
//! its threshold-pivoting factorization. MNA patterns are structurally
//! symmetric (every element stamp touches `(i, j)` and `(j, i)`), so a
//! symmetric ordering is the natural fit.
//!
//! The ordering is purely structural: it looks only at the sparsity pattern,
//! never at values, so it can be computed once per circuit structure and
//! reused for every matrix assembled over that structure. Numeric safety is
//! restored at factorization time by
//! [`SparseLu::factor_with_symbolic_ordered`](crate::SparseLu::factor_with_symbolic_ordered),
//! which follows the ordering **unless a pivot fails a relative magnitude
//! threshold**, in which case it swaps rows exactly like partial pivoting
//! would.
//!
//! # Example
//!
//! ```
//! use loopscope_sparse::{ordering, SparseLu, TripletMatrix};
//!
//! // An "arrow" matrix: natural-order elimination fills in completely,
//! // eliminating the dense row/column last keeps the factors sparse.
//! let n = 8;
//! let mut t = TripletMatrix::<f64>::new(n, n);
//! for i in 0..n {
//!     t.push(i, i, 4.0);
//!     if i + 1 < n {
//!         t.push(i, 0, 1.0);
//!         t.push(0, i + 1, 1.0);
//!     }
//! }
//! let m = t.to_csr();
//! let order = ordering::min_degree_order(&m);
//! let (_, ordered) = SparseLu::factor_with_symbolic_ordered(&m, &order)?;
//! let (_, natural) = SparseLu::factor_with_symbolic(&m)?;
//! // Deferring the dense hub to the end eliminates the fill-in entirely.
//! assert_eq!(ordered.fill_nnz(), m.nnz());
//! assert!(ordered.fill_nnz() < natural.fill_nnz());
//! # Ok::<(), loopscope_sparse::SolveError>(())
//! ```

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::collections::BTreeSet;

/// Computes a fill-reducing elimination order by the minimum-degree
/// heuristic on the pattern of `A + Aᵀ`.
///
/// Returns a permutation `order` of `0..n` where `order[k]` is the original
/// row/column index to eliminate at step `k`. Feed it to
/// [`SparseLu::factor_ordered`](crate::SparseLu::factor_ordered) or
/// [`SparseLu::factor_with_symbolic_ordered`](crate::SparseLu::factor_with_symbolic_ordered).
///
/// The algorithm maintains the elimination graph explicitly: at each step the
/// uneliminated vertex of smallest degree is removed and its neighbours are
/// connected into a clique (the structural effect of one elimination step on
/// a symmetric pattern). Ties break toward the smallest index, so the order
/// is deterministic. The cost is `O(n²)` in the selection scans plus the size
/// of the fill it predicts — negligible next to factorization for circuit
/// matrices, and only paid once per circuit structure.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn min_degree_order<T: Scalar>(matrix: &CsrMatrix<T>) -> Vec<usize> {
    assert_eq!(
        matrix.rows(),
        matrix.cols(),
        "fill-reducing ordering requires a square matrix"
    );
    let n = matrix.rows();
    // Adjacency of A + Aᵀ, diagonal excluded.
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for r in 0..n {
        for &c in matrix.row_pattern(r) {
            if r != c {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }

    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Smallest degree, smallest index on ties: deterministic and cheap.
        let mut pivot = usize::MAX;
        let mut pivot_deg = usize::MAX;
        for (v, nbrs) in adj.iter().enumerate() {
            if !eliminated[v] && nbrs.len() < pivot_deg {
                pivot_deg = nbrs.len();
                pivot = v;
            }
        }
        debug_assert!(pivot < n, "selection must find an uneliminated vertex");
        eliminated[pivot] = true;
        order.push(pivot);

        // Eliminating `pivot` connects its remaining neighbours into a
        // clique; `pivot` itself leaves the graph.
        let nbrs: Vec<usize> = adj[pivot].iter().copied().collect();
        for &u in &nbrs {
            adj[u].remove(&pivot);
        }
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                adj[u].insert(w);
                adj[w].insert(u);
            }
        }
        adj[pivot].clear();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparseLu, TripletMatrix};

    fn tridiagonal(n: usize) -> CsrMatrix<f64> {
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    /// 5-point-stencil grid Laplacian on a p×p mesh (plus a diagonal shift to
    /// keep it non-singular) — the classic case where banded elimination fills
    /// in O(n·p) entries but minimum degree does far better.
    fn mesh(p: usize) -> CsrMatrix<f64> {
        let n = p * p;
        let mut t = TripletMatrix::<f64>::new(n, n);
        for i in 0..p {
            for j in 0..p {
                let u = i * p + j;
                t.push(u, u, 4.1);
                if i + 1 < p {
                    t.push(u, u + p, -1.0);
                    t.push(u + p, u, -1.0);
                }
                if j + 1 < p {
                    t.push(u, u + 1, -1.0);
                    t.push(u + 1, u, -1.0);
                }
            }
        }
        t.to_csr()
    }

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&v| {
                if v >= n || seen[v] {
                    false
                } else {
                    seen[v] = true;
                    true
                }
            })
    }

    #[test]
    fn order_is_a_permutation() {
        let m = mesh(7);
        let order = min_degree_order(&m);
        assert!(is_permutation(&order, m.rows()));
    }

    #[test]
    fn tridiagonal_order_produces_no_extra_fill() {
        // A path graph eliminates without fill under min degree (endpoints
        // always have degree 1), matching the natural order's zero fill.
        let m = tridiagonal(40);
        let order = min_degree_order(&m);
        let (_, ordered) = SparseLu::factor_with_symbolic_ordered(&m, &order).unwrap();
        let (_, natural) = SparseLu::factor_with_symbolic(&m).unwrap();
        assert!(
            ordered.fill_nnz() <= natural.fill_nnz(),
            "ordered fill {} must not exceed natural fill {}",
            ordered.fill_nnz(),
            natural.fill_nnz()
        );
        // Zero fill on a tridiagonal: pattern size equals input nnz.
        assert_eq!(ordered.fill_nnz(), m.nnz());
    }

    #[test]
    fn mesh_order_beats_natural_order() {
        let m = mesh(12);
        let order = min_degree_order(&m);
        let (_, ordered) = SparseLu::factor_with_symbolic_ordered(&m, &order).unwrap();
        let (_, natural) = SparseLu::factor_with_symbolic(&m).unwrap();
        assert!(
            ordered.fill_nnz() < natural.fill_nnz(),
            "mesh: ordered fill {} must beat natural fill {}",
            ordered.fill_nnz(),
            natural.fill_nnz()
        );
    }

    #[test]
    fn empty_and_single_matrices() {
        let m = CsrMatrix::<f64>::zeros(0, 0);
        assert!(min_degree_order(&m).is_empty());
        let mut t = TripletMatrix::<f64>::new(1, 1);
        t.push(0, 0, 1.0);
        assert_eq!(min_degree_order(&t.to_csr()), vec![0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let m = CsrMatrix::<f64>::zeros(2, 3);
        min_degree_order(&m);
    }
}
