//! Block-triangular form (BTF) analysis of an unsymmetric sparsity pattern.
//!
//! KLU's first structural move — before any ordering or pivoting — is to
//! permute the matrix to **block upper-triangular form**: row and column
//! permutations `P`, `Q` such that `P·A·Q` has square diagonal blocks with
//! all remaining entries strictly *above* them. Each diagonal block can then
//! be factored independently (fill never crosses a block boundary) and the
//! off-diagonal entries are used raw by a block back-substitution — for
//! circuits with one-directional signal flow (cascaded stages, buffered
//! sub-circuits, bias cells driving a core) this turns one big factorization
//! into many small ones.
//!
//! The analysis is the textbook two-phase construction:
//!
//! 1. **Maximum transversal** (Duff's MC21): an augmenting-path bipartite
//!    matching pairs every column with a row holding a structural entry in
//!    it, i.e. a row permutation giving a zero-free diagonal. A deficient
//!    matching means the matrix is **structurally singular** — no values
//!    over this pattern can ever be factored — reported as
//!    [`SolveError::Singular`] carrying the original column index.
//! 2. **Tarjan's strongly connected components** on the directed graph the
//!    matched pattern induces on the columns (edge `c → c'` when the row
//!    matched to `c` holds an entry in column `c'`). Each SCC is one
//!    diagonal block; emitting the components in topological order makes
//!    every cross-block entry point from an earlier block's row into a
//!    later block's column — block *upper*-triangular form.
//!
//! Both phases are purely structural (values are never read), so a [`Btf`]
//! is computed once per circuit structure and reused for every matrix
//! assembled over it. Within each block the rows and columns are sorted
//! ascending by original index, so an **irreducible matrix degenerates to a
//! single block with identity permutations** and the BTF-aware
//! factorization ([`SparseLu::factor_with_symbolic_btf`]) becomes exactly
//! the plain fill-reducing ordered factorization.
//!
//! [`SolveError::Singular`]: crate::SolveError::Singular
//! [`SparseLu::factor_with_symbolic_btf`]: crate::SparseLu::factor_with_symbolic_btf
//!
//! # Example
//!
//! ```
//! use loopscope_sparse::{btf, TripletMatrix};
//!
//! // A 2-block cascade: unknowns {0,1} are strongly coupled, unknown {2}
//! // reads their output but nothing feeds back into it.
//! let mut t = TripletMatrix::<f64>::new(3, 3);
//! t.push(0, 0, 2.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! t.push(2, 0, 1.0); // one-way coupling: row 2 reads column 0
//! t.push(2, 2, 4.0);
//! let form = btf::analyze(&t.to_csr())?;
//! // Row 2's block must precede {0, 1} so the coupling entry sits above
//! // the diagonal blocks.
//! assert_eq!(form.block_count(), 2);
//! assert_eq!(&form.col_perm()[form.block_range(0)], &[2]);
//! # Ok::<(), loopscope_sparse::SolveError>(())
//! ```

use crate::csr::CsrMatrix;
use crate::lu::SolveError;
use crate::scalar::Scalar;

/// A block upper-triangular permutation of a square sparsity pattern,
/// computed by [`analyze`].
///
/// `row_perm[k]` / `col_perm[k]` name the original row/column at BTF
/// position `k`; `block_ptr` holds the positions where diagonal blocks
/// begin and end (`block_ptr[b]..block_ptr[b + 1]` is block `b`). Every
/// stored entry of the permuted matrix lies in a diagonal block or strictly
/// above it — never below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Btf {
    row_perm: Vec<usize>,
    col_perm: Vec<usize>,
    block_ptr: Vec<usize>,
}

impl Btf {
    /// Number of diagonal blocks.
    pub fn block_count(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// `true` when the pattern is irreducible: one block covering the whole
    /// matrix, with identity permutations — BTF adds nothing over a plain
    /// fill-reducing factorization in that case.
    pub fn is_single_block(&self) -> bool {
        self.block_count() <= 1
    }

    /// The BTF-position range of diagonal block `b`.
    ///
    /// # Panics
    ///
    /// Panics when `b >= self.block_count()`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.block_ptr[b]..self.block_ptr[b + 1]
    }

    /// The row permutation: element `k` is the original row at BTF position
    /// `k`. Within each block, rows are sorted ascending by original index,
    /// so a single-block result is the identity.
    pub fn row_perm(&self) -> &[usize] {
        &self.row_perm
    }

    /// The column permutation, same conventions as [`row_perm`](Btf::row_perm).
    pub fn col_perm(&self) -> &[usize] {
        &self.col_perm
    }

    /// Block boundaries in BTF positions: `block_ptr()[b]..block_ptr()[b+1]`
    /// spans diagonal block `b`; the slice has `block_count() + 1` entries.
    pub fn block_ptr(&self) -> &[usize] {
        &self.block_ptr
    }
}

/// Computes the block upper-triangular form of a square sparsity pattern:
/// a maximum transversal (zero-free diagonal) followed by Tarjan's SCC on
/// the matched column graph. Values are never read — only the pattern.
///
/// # Errors
///
/// Returns [`SolveError::NotSquare`] for rectangular input and
/// [`SolveError::Singular`] (carrying the **original column index**) when
/// the pattern is structurally singular, i.e. no perfect row/column
/// matching exists and no assignment of values could make the matrix
/// invertible.
pub fn analyze<T: Scalar>(matrix: &CsrMatrix<T>) -> Result<Btf, SolveError> {
    let n = matrix.rows();
    if matrix.cols() != n {
        return Err(SolveError::NotSquare {
            rows: n,
            cols: matrix.cols(),
        });
    }
    let row_of_col = maximum_transversal(matrix)?;
    let (col_perm, block_ptr) = tarjan_blocks(matrix, &row_of_col);
    // Within each block sort rows ascending, mirroring the ascending column
    // order `tarjan_blocks` produced: deterministic, and the single-block
    // case degenerates to identity permutations on both sides.
    let mut row_perm = Vec::with_capacity(n);
    for b in 0..block_ptr.len() - 1 {
        let start = row_perm.len();
        row_perm.extend(
            col_perm[block_ptr[b]..block_ptr[b + 1]]
                .iter()
                .map(|&c| row_of_col[c]),
        );
        row_perm[start..].sort_unstable();
    }
    Ok(Btf {
        row_perm,
        col_perm,
        block_ptr,
    })
}

/// Maximum bipartite matching of rows to columns over the structural
/// pattern (MC21-style augmenting paths, iterative so deep chains cannot
/// overflow the stack). Returns `row_of_col`: the row matched to each
/// column.
///
/// # Errors
///
/// Returns [`SolveError::Singular`] with the first unmatched original
/// column when no perfect matching exists.
fn maximum_transversal<T: Scalar>(matrix: &CsrMatrix<T>) -> Result<Vec<usize>, SolveError> {
    const UNMATCHED: usize = usize::MAX;
    let n = matrix.rows();
    let mut row_of_col = vec![UNMATCHED; n];
    let mut col_of_row = vec![UNMATCHED; n];
    // visited[c] == stamp of the current augmentation ⇒ column already
    // explored on this path; stamps replace an O(n) clear per start row.
    let mut visited = vec![UNMATCHED; n];
    // DFS frames: (row, next edge index, column that led into this row —
    // UNMATCHED for the root of the augmenting path).
    let mut frames: Vec<(usize, usize, usize)> = Vec::new();
    for start in 0..n {
        if col_of_row[start] != UNMATCHED {
            continue;
        }
        let stamp = start;
        frames.clear();
        frames.push((start, 0, UNMATCHED));
        while let Some(&(row, edge, _)) = frames.last() {
            let pattern = matrix.row_pattern(row);
            if edge >= pattern.len() {
                frames.pop();
                continue;
            }
            frames.last_mut().expect("frame present").1 += 1;
            let col = pattern[edge];
            if visited[col] == stamp {
                continue;
            }
            visited[col] = stamp;
            let owner = row_of_col[col];
            if owner == UNMATCHED {
                // Free column: flip the matching along the whole path.
                row_of_col[col] = row;
                col_of_row[row] = col;
                for i in (1..frames.len()).rev() {
                    let via = frames[i].2;
                    let prev = frames[i - 1].0;
                    row_of_col[via] = prev;
                    col_of_row[prev] = via;
                }
                break;
            }
            frames.push((owner, 0, col));
        }
    }
    match row_of_col.iter().position(|&r| r == UNMATCHED) {
        Some(col) => Err(SolveError::Singular(col)),
        None => Ok(row_of_col),
    }
}

/// Tarjan's strongly connected components (iterative) on the matched column
/// graph: edge `c → c'` for every entry of row `row_of_col[c]` in column
/// `c' != c`. Returns the column permutation (components concatenated in
/// topological order, each sorted ascending) and the block boundaries.
fn tarjan_blocks<T: Scalar>(
    matrix: &CsrMatrix<T>,
    row_of_col: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    const UNVISITED: usize = usize::MAX;
    let n = row_of_col.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    // Components in Tarjan emission order: every successor component is
    // emitted before its predecessors, i.e. REVERSE topological order.
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some(&(v, edge)) = call.last() {
            let pattern = matrix.row_pattern(row_of_col[v]);
            if edge < pattern.len() {
                call.last_mut().expect("frame present").1 += 1;
                let w = pattern[edge];
                if w == v {
                    continue;
                }
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    scc_stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            call.pop();
            if let Some(&(parent, _)) = call.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut component = Vec::new();
                loop {
                    let w = scc_stack.pop().expect("SCC stack holds the component");
                    on_stack[w] = false;
                    component.push(w);
                    if w == v {
                        break;
                    }
                }
                components.push(component);
            }
        }
    }
    // Topological order (edges pointing to LATER blocks = upper-triangular
    // form) is the reverse of Tarjan's emission order.
    components.reverse();
    let mut col_perm = Vec::with_capacity(n);
    let mut block_ptr = Vec::with_capacity(components.len() + 1);
    block_ptr.push(0);
    for mut component in components {
        component.sort_unstable();
        col_perm.extend(component);
        block_ptr.push(col_perm.len());
    }
    (col_perm, block_ptr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn csr_from_dense(d: &[&[f64]]) -> CsrMatrix<f64> {
        let rows = d.len();
        let cols = d[0].len();
        let mut t = TripletMatrix::new(rows, cols);
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(i, j, v);
                }
            }
        }
        t.to_csr()
    }

    fn is_permutation(p: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.len() == n
            && p.iter().all(|&v| {
                if v >= n || seen[v] {
                    false
                } else {
                    seen[v] = true;
                    true
                }
            })
    }

    /// No entry of the permuted matrix may fall below its diagonal block.
    fn assert_block_upper(matrix: &CsrMatrix<f64>, form: &Btf) {
        let n = matrix.rows();
        let mut rpos = vec![0usize; n];
        let mut cpos = vec![0usize; n];
        for (k, &r) in form.row_perm().iter().enumerate() {
            rpos[r] = k;
        }
        for (k, &c) in form.col_perm().iter().enumerate() {
            cpos[c] = k;
        }
        let block_of = |pos: usize| {
            (0..form.block_count())
                .find(|&b| form.block_range(b).contains(&pos))
                .expect("position inside some block")
        };
        for (r, c, _) in matrix.iter() {
            assert!(
                block_of(rpos[r]) <= block_of(cpos[c]),
                "entry ({r}, {c}) falls below its diagonal block"
            );
        }
    }

    #[test]
    fn diagonal_matrix_is_all_singleton_blocks() {
        let m = csr_from_dense(&[&[1.0, 0.0, 0.0], &[0.0, 2.0, 0.0], &[0.0, 0.0, 3.0]]);
        let form = analyze(&m).unwrap();
        assert_eq!(form.block_count(), 3);
        assert!(is_permutation(form.row_perm(), 3));
        assert!(is_permutation(form.col_perm(), 3));
        assert_block_upper(&m, &form);
    }

    #[test]
    fn irreducible_matrix_degenerates_to_identity_single_block() {
        // Tridiagonal: strongly connected, one block, identity permutations.
        let m = csr_from_dense(&[&[2.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 2.0]]);
        let form = analyze(&m).unwrap();
        assert!(form.is_single_block());
        assert_eq!(form.row_perm(), &[0, 1, 2]);
        assert_eq!(form.col_perm(), &[0, 1, 2]);
        assert_eq!(form.block_ptr(), &[0, 3]);
    }

    #[test]
    fn triangular_matrix_splits_into_singletons() {
        let m = csr_from_dense(&[&[1.0, 5.0, 5.0], &[0.0, 2.0, 5.0], &[0.0, 0.0, 3.0]]);
        let form = analyze(&m).unwrap();
        assert_eq!(form.block_count(), 3);
        assert_block_upper(&m, &form);
    }

    #[test]
    fn one_way_cascade_splits_into_blocks() {
        // Two strongly coupled 2x2 cells; cell {2,3} reads cell {0,1}'s
        // output but never the reverse — exactly a buffered circuit cascade.
        let m = csr_from_dense(&[
            &[2.0, 1.0, 0.0, 0.0],
            &[1.0, 3.0, 0.0, 0.0],
            &[1.0, 0.0, 2.0, 1.0],
            &[0.0, 0.0, 1.0, 3.0],
        ]);
        let form = analyze(&m).unwrap();
        assert_eq!(form.block_count(), 2);
        assert_block_upper(&m, &form);
        // Rows {2,3} read columns {0,1}: block {2,3} must come first so the
        // coupling entries sit ABOVE the diagonal blocks.
        assert_eq!(&form.col_perm()[form.block_range(0)], &[2, 3]);
        assert_eq!(&form.col_perm()[form.block_range(1)], &[0, 1]);
    }

    #[test]
    fn matching_survives_zero_diagonal() {
        // MNA-style voltage-source pattern: zero diagonal, but a perfect
        // matching exists by swapping the rows.
        let m = csr_from_dense(&[&[0.0, 1.0], &[1.0, 1.0]]);
        let form = analyze(&m).unwrap();
        assert!(is_permutation(form.row_perm(), 2));
        assert!(is_permutation(form.col_perm(), 2));
        assert_block_upper(&m, &form);
    }

    #[test]
    fn structural_singularity_reports_original_column() {
        // Column 1 is structurally empty: no matching can cover it.
        let m = csr_from_dense(&[&[1.0, 0.0, 2.0], &[3.0, 0.0, 1.0], &[0.0, 0.0, 4.0]]);
        assert!(matches!(analyze(&m), Err(SolveError::Singular(1))));
    }

    #[test]
    fn rectangular_is_rejected() {
        let m = CsrMatrix::<f64>::zeros(2, 3);
        assert!(matches!(analyze(&m), Err(SolveError::NotSquare { .. })));
    }

    #[test]
    fn empty_matrix_has_no_blocks() {
        let m = CsrMatrix::<f64>::zeros(0, 0);
        let form = analyze(&m).unwrap();
        assert_eq!(form.block_count(), 0);
        assert!(form.is_single_block());
        assert_eq!(form.block_ptr(), &[0]);
    }

    #[test]
    fn permuted_block_structure_is_recovered() {
        // Build a 3-block matrix, then scramble rows and columns; the
        // analysis must still find 3 blocks and a valid upper form.
        let n = 6;
        let mut t = TripletMatrix::<f64>::new(n, n);
        // Blocks {0,1}, {2,3}, {4,5} with forward coupling 0→1→2.
        for b in 0..3 {
            let s = 2 * b;
            t.push(s, s, 2.0);
            t.push(s, s + 1, 1.0);
            t.push(s + 1, s, 1.0);
            t.push(s + 1, s + 1, 2.0);
            if b > 0 {
                // Block b reads block b-1's output.
                t.push(s, s - 1, 0.5);
            }
        }
        let base = t.to_csr();
        // Scramble: new_row = (5r + 1) mod 6, new_col = (5c + 2) mod 6
        // (5 is coprime with 6, so both maps are permutations).
        let mut t2 = TripletMatrix::<f64>::new(n, n);
        for (r, c, v) in base.iter() {
            t2.push((5 * r + 1) % n, (5 * c + 2) % n, v);
        }
        let scrambled = t2.to_csr();
        let form = analyze(&scrambled).unwrap();
        assert_eq!(form.block_count(), 3);
        assert_block_upper(&scrambled, &form);
    }
}
