//! Numerical foundations for the `loopscope` AC-stability analysis toolkit.
//!
//! This crate provides the low-level mathematics used throughout the
//! workspace and deliberately avoids any external numerical dependencies:
//!
//! * [`Complex64`] — complex arithmetic for AC (frequency-domain) analysis.
//! * [`DMatrix`] / [`CMatrix`] — small dense matrices with partial-pivot LU
//!   solvers, used by tests and by the dense fallback paths of the simulator.
//! * [`grid`] — linear and logarithmic frequency grids.
//! * [`diff`] — numerical differentiation on non-uniform grids (the stability
//!   plot of Milev & Burt is a doubly normalized second derivative of the
//!   magnitude response, evaluated on a logarithmic frequency grid).
//! * [`second_order`] — the analytic second-order-system relations that map a
//!   damping ratio to percent overshoot, phase margin, resonant peak and the
//!   paper's *performance index* `P(ω_n) = −1/ζ²` (paper Table 1 / Eq. 1.4).
//! * [`peaks`] — peak detection and classification used to locate loop natural
//!   frequencies on a stability plot.
//! * [`interp`] — interpolation helpers.
//! * [`poly`] — polynomial and rational (pole/zero) transfer-function
//!   evaluation used to build synthetic reference responses in tests.
//!
//! # Example
//!
//! ```
//! use loopscope_math::second_order::SecondOrder;
//!
//! // A damping ratio of 0.2 corresponds to the paper's main-loop example:
//! let sys = SecondOrder::from_damping(0.2, 1.0);
//! assert!((sys.performance_index() - (-25.0)).abs() < 1e-9);
//! assert!((sys.percent_overshoot() - 52.66).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod dense;
pub mod diff;
pub mod grid;
pub mod interp;
pub mod peaks;
pub mod poly;
pub mod second_order;

pub use complex::Complex64;
pub use dense::{CMatrix, DMatrix, LuError};
pub use grid::{linspace, logspace, FrequencyGrid, SweepKind};
pub use second_order::SecondOrder;

/// Convenience alias for angular frequency in radians per second.
pub type RadPerSec = f64;

/// Convenience alias for frequency in hertz.
pub type Hertz = f64;

/// Two times pi, used to convert between Hz and rad/s.
pub const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

/// Converts a frequency in hertz to angular frequency in radians per second.
///
/// ```
/// let w = loopscope_math::hz_to_rad(1.0);
/// assert!((w - 6.283185307179586).abs() < 1e-12);
/// ```
#[inline]
pub fn hz_to_rad(f: Hertz) -> RadPerSec {
    TWO_PI * f
}

/// Converts an angular frequency in radians per second to hertz.
///
/// ```
/// let f = loopscope_math::rad_to_hz(std::f64::consts::PI * 2.0);
/// assert!((f - 1.0).abs() < 1e-12);
/// ```
#[inline]
pub fn rad_to_hz(w: RadPerSec) -> Hertz {
    w / TWO_PI
}

/// Returns `true` when two floating point numbers agree to a relative
/// tolerance `rel`, with an absolute floor `abs` used near zero.
///
/// ```
/// assert!(loopscope_math::approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-12));
/// assert!(!loopscope_math::approx_eq(1.0, 1.1, 1e-3, 1e-12));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= abs {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= rel * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hz_rad_roundtrip() {
        for f in [1.0, 10.0, 2.0e6, 3.16e6, 5.0e7] {
            assert!(approx_eq(rad_to_hz(hz_to_rad(f)), f, 1e-12, 0.0));
        }
    }

    #[test]
    fn approx_eq_absolute_floor() {
        assert!(approx_eq(0.0, 1e-15, 1e-9, 1e-12));
        assert!(!approx_eq(0.0, 1e-3, 1e-9, 1e-12));
    }
}
