//! Interpolation helpers.
//!
//! Used to refine peak locations on sampled stability plots and to locate
//! gain/phase crossover frequencies on Bode plots (the traditional baseline
//! the paper compares against).

/// Linearly interpolates `y` at `x` on a strictly increasing grid `xs`.
///
/// Values outside the grid are clamped to the end samples.
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length or are empty.
///
/// ```
/// use loopscope_math::interp::lerp_at;
/// let v = lerp_at(&[0.0, 1.0, 2.0], &[0.0, 10.0, 20.0], 1.5);
/// assert!((v - 15.0).abs() < 1e-12);
/// ```
pub fn lerp_at(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "xs and ys must match in length");
    lerp_at_by(xs, x, |i| ys[i])
}

/// Like [`lerp_at`] but reads ordinates through an accessor instead of a
/// slice, so callers can interpolate over derived quantities (a column of a
/// sweep, a magnitude of a complex series, …) without materializing them.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn lerp_at_by(xs: &[f64], x: f64, y: impl Fn(usize) -> f64) -> f64 {
    assert!(!xs.is_empty(), "cannot interpolate an empty series");
    if x <= xs[0] {
        return y(0);
    }
    if x >= xs[xs.len() - 1] {
        return y(xs.len() - 1);
    }
    let idx = match xs.binary_search_by(|v| v.partial_cmp(&x).expect("non-finite abscissa")) {
        Ok(i) => return y(i),
        Err(i) => i,
    };
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (y(idx - 1), y(idx));
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// Finds the abscissa where the series `ys` crosses `target`, scanning from
/// the left, and refines the location by linear interpolation between the
/// bracketing samples. Returns `None` when no crossing exists.
///
/// This is used, for example, to find the 0 dB gain crossover and the −180°
/// phase crossing of an open-loop Bode plot.
///
/// ```
/// use loopscope_math::interp::first_crossing;
/// let x = vec![0.0, 1.0, 2.0, 3.0];
/// let y = vec![3.0, 2.0, 0.5, -1.0];
/// let c = first_crossing(&x, &y, 1.0).unwrap();
/// assert!((c - 1.6666666).abs() < 1e-6);
/// ```
pub fn first_crossing(xs: &[f64], ys: &[f64], target: f64) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must match in length");
    for i in 1..xs.len() {
        let (a, b) = (ys[i - 1] - target, ys[i] - target);
        if a == 0.0 {
            return Some(xs[i - 1]);
        }
        if a * b < 0.0 {
            let frac = a / (a - b);
            return Some(xs[i - 1] + frac * (xs[i] - xs[i - 1]));
        }
    }
    if let Some(&last) = ys.last() {
        if last == target {
            return xs.last().copied();
        }
    }
    None
}

/// Refines the location and value of an extremum by fitting a parabola
/// through the sample at `idx` and its two neighbours.
///
/// `xs` is expected to be (locally) smooth; for logarithmic frequency grids
/// pass the logarithm of the frequency to preserve symmetry. Returns
/// `(x_refined, y_refined)`. Falls back to the raw sample when `idx` is at
/// either end of the series or the curvature vanishes.
///
/// ```
/// use loopscope_math::interp::parabolic_refine;
/// // Samples of y = -(x-1.05)^2 around x=1; true peak at 1.05.
/// let xs = [0.9, 1.0, 1.1];
/// let ys: Vec<f64> = xs.iter().map(|&x| -(x - 1.05f64).powi(2)).collect();
/// let (x, y) = parabolic_refine(&xs, &ys, 1);
/// assert!((x - 1.05).abs() < 1e-12);
/// assert!(y.abs() < 1e-12);
/// ```
pub fn parabolic_refine(xs: &[f64], ys: &[f64], idx: usize) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "xs and ys must match in length");
    if idx == 0 || idx + 1 >= xs.len() {
        return (xs[idx], ys[idx]);
    }
    let (x0, x1, x2) = (xs[idx - 1], xs[idx], xs[idx + 1]);
    let (y0, y1, y2) = (ys[idx - 1], ys[idx], ys[idx + 1]);
    // Fit y = a·x² + b·x + c through the three points via Lagrange form.
    let denom0 = (x0 - x1) * (x0 - x2);
    let denom1 = (x1 - x0) * (x1 - x2);
    let denom2 = (x2 - x0) * (x2 - x1);
    let a = y0 / denom0 + y1 / denom1 + y2 / denom2;
    if a.abs() < 1e-300 {
        return (x1, y1);
    }
    let b = -y0 * (x1 + x2) / denom0 - y1 * (x0 + x2) / denom1 - y2 * (x0 + x1) / denom2;
    let c = y0 * x1 * x2 / denom0 + y1 * x0 * x2 / denom1 + y2 * x0 * x1 / denom2;
    let xv = -b / (2.0 * a);
    // Keep the refinement inside the bracketing interval.
    if xv < x0 || xv > x2 {
        return (x1, y1);
    }
    (xv, a * xv * xv + b * xv + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        let ys = [10.0, 20.0];
        assert_eq!(lerp_at(&xs, &ys, 0.0), 10.0);
        assert_eq!(lerp_at(&xs, &ys, 5.0), 20.0);
    }

    #[test]
    fn lerp_hits_grid_points() {
        let xs = [1.0, 2.0, 4.0];
        let ys = [1.0, 4.0, 16.0];
        assert_eq!(lerp_at(&xs, &ys, 2.0), 4.0);
        assert!((lerp_at(&xs, &ys, 3.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_none_when_monotone_away() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 2.0, 3.0];
        assert!(first_crossing(&xs, &ys, 0.0).is_none());
    }

    #[test]
    fn crossing_at_exact_sample() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [2.0, 1.0, 0.0];
        let c = first_crossing(&xs, &ys, 1.0).unwrap();
        assert_eq!(c, 1.0);
    }

    #[test]
    fn parabolic_refine_at_edges_is_identity() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 4.0, 3.0];
        assert_eq!(parabolic_refine(&xs, &ys, 0), (0.0, 5.0));
        assert_eq!(parabolic_refine(&xs, &ys, 2), (2.0, 3.0));
    }

    #[test]
    fn parabolic_refine_recovers_vertex_on_nonuniform_grid() {
        let xs = [0.5, 1.0, 2.5];
        let f = |x: f64| 3.0 - 2.0 * (x - 1.3).powi(2);
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let (x, y) = parabolic_refine(&xs, &ys, 1);
        assert!((x - 1.3).abs() < 1e-12);
        assert!((y - 3.0).abs() < 1e-12);
    }
}
