//! Polynomials and rational (pole/zero) transfer functions.
//!
//! These are used to build *synthetic* frequency responses with exactly known
//! pole/zero locations — the ground truth against which the stability-plot
//! post-processing is validated — and to model ideal blocks in example
//! circuits and ablation studies.

use crate::complex::Complex64;

/// A polynomial with real coefficients, stored lowest-degree first.
///
/// ```
/// use loopscope_math::poly::Polynomial;
/// use loopscope_math::Complex64;
/// // p(s) = 1 + 2s + s²
/// let p = Polynomial::new(vec![1.0, 2.0, 1.0]);
/// let v = p.eval(Complex64::new(0.0, 1.0)); // s = j
/// assert!((v - Complex64::new(0.0, 2.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients ordered lowest degree first.
    /// Trailing zero coefficients are trimmed; the zero polynomial keeps a
    /// single zero coefficient.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Self { coeffs }
    }

    /// The coefficients, lowest degree first.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree of the polynomial (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the polynomial at a complex point using Horner's rule.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * s + c;
        }
        acc
    }

    /// Evaluates the polynomial at a real point.
    pub fn eval_real(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Builds the monic polynomial whose roots are the given complex values.
    /// Roots must come in conjugate pairs (or be real) for the result to have
    /// real coefficients; the imaginary residue is dropped.
    pub fn from_roots(roots: &[Complex64]) -> Self {
        let mut acc = vec![Complex64::ONE];
        for &r in roots {
            let mut next = vec![Complex64::ZERO; acc.len() + 1];
            for (i, &c) in acc.iter().enumerate() {
                next[i] -= c * r;
                next[i + 1] += c;
            }
            acc = next;
        }
        Self::new(acc.into_iter().map(|c| c.re).collect())
    }
}

/// A rational transfer function described by gain, zeros and poles:
/// `H(s) = k · Π(s − z_i) / Π(s − p_j)`.
///
/// ```
/// use loopscope_math::poly::RationalTf;
/// use loopscope_math::Complex64;
/// // A single real pole at −1 rad/s with unity DC gain.
/// let h = RationalTf::from_poles_zeros(1.0, &[Complex64::new(-1.0, 0.0)], &[]);
/// let mag_dc = h.magnitude_at_radians(0.0);
/// assert!((mag_dc - 1.0).abs() < 1e-12);
/// let mag_corner = h.magnitude_at_radians(1.0);
/// assert!((mag_corner - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RationalTf {
    gain: f64,
    zeros: Vec<Complex64>,
    poles: Vec<Complex64>,
}

impl RationalTf {
    /// Creates a transfer function from a DC gain, pole list and zero list.
    ///
    /// The `dc_gain` is the value of `|H(0)|` (assuming no poles or zeros at
    /// the origin); the internal scale factor is adjusted accordingly.
    ///
    /// # Panics
    ///
    /// Panics if any pole or zero lies exactly at the origin (use
    /// [`RationalTf::new_with_gain`] for integrators/differentiators).
    pub fn from_poles_zeros(dc_gain: f64, poles: &[Complex64], zeros: &[Complex64]) -> Self {
        assert!(
            poles.iter().chain(zeros.iter()).all(|c| c.abs() > 0.0),
            "poles/zeros at the origin are not supported by from_poles_zeros"
        );
        let mut k = dc_gain;
        for p in poles {
            k *= p.abs();
        }
        for z in zeros {
            k /= z.abs();
        }
        // Sign bookkeeping: H(0) = k · Π(−z)/Π(−p); we computed magnitude only,
        // fix the sign so that H(0).re matches dc_gain's sign.
        let mut tf = Self {
            gain: k,
            zeros: zeros.to_vec(),
            poles: poles.to_vec(),
        };
        let h0 = tf.eval(Complex64::ZERO).re;
        if (h0 < 0.0) != (dc_gain < 0.0) && h0 != 0.0 {
            tf.gain = -tf.gain;
        }
        tf
    }

    /// Creates a transfer function directly from the multiplicative gain `k`,
    /// poles and zeros (no DC normalization).
    pub fn new_with_gain(gain: f64, poles: Vec<Complex64>, zeros: Vec<Complex64>) -> Self {
        Self { gain, zeros, poles }
    }

    /// Creates the canonical second-order low-pass
    /// `ω_n² / (s² + 2ζω_n s + ω_n²)` from a damping ratio and natural
    /// frequency in hertz.
    pub fn second_order_lowpass(zeta: f64, natural_freq_hz: f64) -> Self {
        let wn = crate::hz_to_rad(natural_freq_hz);
        let (p1, p2) = if zeta < 1.0 {
            let re = -zeta * wn;
            let im = wn * (1.0 - zeta * zeta).sqrt();
            (Complex64::new(re, im), Complex64::new(re, -im))
        } else {
            let a = -wn * (zeta - (zeta * zeta - 1.0).sqrt());
            let b = -wn * (zeta + (zeta * zeta - 1.0).sqrt());
            (Complex64::new(a, 0.0), Complex64::new(b, 0.0))
        };
        Self::new_with_gain(wn * wn, vec![p1, p2], Vec::new())
    }

    /// The multiplicative gain `k`.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The zeros of the transfer function.
    pub fn zeros(&self) -> &[Complex64] {
        &self.zeros
    }

    /// The poles of the transfer function.
    pub fn poles(&self) -> &[Complex64] {
        &self.poles
    }

    /// Evaluates `H(s)` at an arbitrary complex frequency.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        let mut num = Complex64::from_real(self.gain);
        for &z in &self.zeros {
            num *= s - z;
        }
        let mut den = Complex64::ONE;
        for &p in &self.poles {
            den *= s - p;
        }
        num / den
    }

    /// Evaluates `H(jω)` for `ω` in radians per second.
    pub fn eval_at_radians(&self, w: f64) -> Complex64 {
        self.eval(Complex64::new(0.0, w))
    }

    /// Magnitude `|H(jω)|` for `ω` in radians per second.
    pub fn magnitude_at_radians(&self, w: f64) -> f64 {
        self.eval_at_radians(w).abs()
    }

    /// Magnitude `|H(j2πf)|` for `f` in hertz.
    pub fn magnitude_at_hz(&self, f: f64) -> f64 {
        self.magnitude_at_radians(crate::hz_to_rad(f))
    }

    /// Samples the magnitude response on a frequency grid given in hertz.
    pub fn magnitude_series(&self, freqs_hz: &[f64]) -> Vec<f64> {
        freqs_hz.iter().map(|&f| self.magnitude_at_hz(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_trims_and_degree() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        assert_eq!(p.degree(), 1);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.coeffs(), &[0.0]);
    }

    #[test]
    fn polynomial_eval_matches_real() {
        let p = Polynomial::new(vec![-3.0, 0.0, 2.0]); // 2x² − 3
        assert_eq!(p.eval_real(2.0), 5.0);
        let v = p.eval(Complex64::from_real(2.0));
        assert!((v.re - 5.0).abs() < 1e-12 && v.im.abs() < 1e-15);
    }

    #[test]
    fn from_roots_builds_expected_quadratic() {
        // Roots −1 ± 2j → s² + 2s + 5.
        let roots = [Complex64::new(-1.0, 2.0), Complex64::new(-1.0, -2.0)];
        let p = Polynomial::from_roots(&roots);
        assert_eq!(p.degree(), 2);
        let c = p.coeffs();
        assert!((c[0] - 5.0).abs() < 1e-12);
        assert!((c[1] - 2.0).abs() < 1e-12);
        assert!((c[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn second_order_lowpass_matches_analytic_magnitude() {
        let zeta = 0.3;
        let fn_hz = 1.0e6;
        let tf = RationalTf::second_order_lowpass(zeta, fn_hz);
        let sys = crate::SecondOrder::from_damping(zeta, fn_hz);
        for f in [1e3, 1e5, 5e5, 1e6, 2e6, 1e7] {
            let a = tf.magnitude_at_hz(f);
            let b = sys.magnitude(f);
            assert!((a - b).abs() < 1e-9 * b.max(1.0), "f={f}: {a} vs {b}");
        }
    }

    #[test]
    fn dc_gain_normalization() {
        let poles = [Complex64::new(-100.0, 0.0), Complex64::new(-1e5, 0.0)];
        let zeros = [Complex64::new(-1e4, 0.0)];
        let tf = RationalTf::from_poles_zeros(42.0, &poles, &zeros);
        assert!((tf.eval(Complex64::ZERO).abs() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn overdamped_lowpass_has_real_poles() {
        let tf = RationalTf::second_order_lowpass(2.0, 1.0e3);
        assert!(tf.poles().iter().all(|p| p.im == 0.0 && p.re < 0.0));
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn from_poles_zeros_rejects_origin() {
        RationalTf::from_poles_zeros(1.0, &[Complex64::ZERO], &[]);
    }

    #[test]
    fn magnitude_series_matches_pointwise() {
        let tf = RationalTf::second_order_lowpass(0.5, 2.0e6);
        let freqs = crate::logspace(1e3, 1e8, 51);
        let series = tf.magnitude_series(&freqs);
        for (f, m) in freqs.iter().zip(&series) {
            assert_eq!(*m, tf.magnitude_at_hz(*f));
        }
    }
}
