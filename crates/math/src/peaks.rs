//! Peak detection and classification on sampled series.
//!
//! The "All Nodes" run mode of the original tool reports, for every circuit
//! node, the most negative peak of the stability plot together with the
//! frequency at which it occurs. It also flags two special cases that the
//! paper mentions explicitly (§4.1 "Stability Peak's Special Cases
//! Identification"): peaks that sit at the end of the swept frequency range
//! ("end-of-range") and plots whose extremum is a plain minimum/maximum of a
//! monotone curve rather than a genuine interior resonance ("min/max" type).

use crate::interp::parabolic_refine;

/// How a detected extremum relates to the sampled frequency range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeakKind {
    /// A genuine interior local extremum, bracketed by samples on both sides.
    Interior,
    /// The extremum sits at the first or last sample of the sweep; the true
    /// resonance may lie outside the analysed frequency range.
    EndOfRange,
    /// The series is monotone over the sweep; the reported value is simply the
    /// global minimum/maximum and does not indicate a resonance.
    MinMax,
}

impl std::fmt::Display for PeakKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeakKind::Interior => write!(f, "interior"),
            PeakKind::EndOfRange => write!(f, "end-of-range"),
            PeakKind::MinMax => write!(f, "min/max"),
        }
    }
}

/// A detected extremum of a sampled series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index of the raw sample closest to the extremum.
    pub index: usize,
    /// Abscissa (e.g. frequency in hertz) of the refined extremum.
    pub x: f64,
    /// Ordinate (e.g. stability-plot value) of the refined extremum.
    pub y: f64,
    /// Classification of the extremum.
    pub kind: PeakKind,
}

/// Finds all interior local minima of `ys`, refined by parabolic
/// interpolation in `log10(x)` (appropriate for logarithmically swept data).
///
/// Only minima whose value is below `threshold` are reported; the stability
/// plot of a complex pole is a *negative* peak, so a threshold of `-1.0`
/// (corresponding to ζ = 1) rejects curvature noise from well-damped or real
/// roots.
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length or `xs` contains non-positive
/// values.
pub fn local_minima(xs: &[f64], ys: &[f64], threshold: f64) -> Vec<Peak> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must match in length");
    assert!(xs.iter().all(|&x| x > 0.0), "abscissae must be positive");
    let n = ys.len();
    let mut peaks = Vec::new();
    if n < 3 {
        return peaks;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.log10()).collect();
    for i in 1..n - 1 {
        if ys[i] < ys[i - 1] && ys[i] <= ys[i + 1] && ys[i] < threshold {
            let (lx_ref, y_ref) = parabolic_refine(&lx, ys, i);
            peaks.push(Peak {
                index: i,
                x: 10f64.powf(lx_ref),
                y: y_ref,
                kind: PeakKind::Interior,
            });
        }
    }
    peaks
}

/// Finds all interior local maxima of `ys` above `threshold`, refined by
/// parabolic interpolation in `log10(x)`.
///
/// Positive peaks of the stability plot correspond to complex *zeros*
/// (paper §2, footnote 2); they do not directly impair stability but are
/// reported for completeness.
///
/// # Panics
///
/// Panics under the same conditions as [`local_minima`].
pub fn local_maxima(xs: &[f64], ys: &[f64], threshold: f64) -> Vec<Peak> {
    let negated: Vec<f64> = ys.iter().map(|v| -v).collect();
    local_minima(xs, &negated, -threshold)
        .into_iter()
        .map(|p| Peak { y: -p.y, ..p })
        .collect()
}

/// Finds the dominant (most negative) stability peak of a series, classifying
/// end-of-range and monotone ("min/max") special cases.
///
/// * If an interior local minimum below `threshold` exists, the deepest one is
///   returned with kind [`PeakKind::Interior`].
/// * Otherwise, if the global minimum sits at either end of the sweep and is
///   below `threshold`, it is returned with kind [`PeakKind::EndOfRange`].
/// * Otherwise the global minimum is returned with kind [`PeakKind::MinMax`];
///   callers typically treat such nodes as "no complex pole detected".
///
/// Returns `None` for series with fewer than three samples.
///
/// ```
/// use loopscope_math::peaks::{dominant_minimum, PeakKind};
/// use loopscope_math::logspace;
/// let x = logspace(0.01, 100.0, 2001);
/// // Synthetic stability plot: a dip of −25 at x ≈ 1.
/// let y: Vec<f64> = x.iter().map(|&x| {
///     let l = x.ln();
///     -25.0 * (-l * l / 0.02).exp()
/// }).collect();
/// let p = dominant_minimum(&x, &y, -1.0).unwrap();
/// assert_eq!(p.kind, PeakKind::Interior);
/// assert!((p.x - 1.0).abs() < 0.05);
/// assert!((p.y + 25.0).abs() < 0.5);
/// ```
pub fn dominant_minimum(xs: &[f64], ys: &[f64], threshold: f64) -> Option<Peak> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must match in length");
    if ys.len() < 3 {
        return None;
    }
    let interior = local_minima(xs, ys, threshold);
    if let Some(best) = interior
        .into_iter()
        .min_by(|a, b| a.y.partial_cmp(&b.y).expect("non-finite peak value"))
    {
        return Some(best);
    }
    // No interior peak: inspect the global minimum.
    let (idx, &val) = ys
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("non-finite sample"))?;
    let kind = if (idx == 0 || idx == ys.len() - 1) && val < threshold {
        PeakKind::EndOfRange
    } else {
        PeakKind::MinMax
    };
    Some(Peak {
        index: idx,
        x: xs[idx],
        y: val,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logspace;

    fn dip(xs: &[f64], center: f64, depth: f64, width: f64) -> Vec<f64> {
        xs.iter()
            .map(|&x| {
                let l = (x / center).ln();
                -depth * (-l * l / width).exp()
            })
            .collect()
    }

    #[test]
    fn finds_single_interior_minimum() {
        let xs = logspace(1e3, 1e9, 1201);
        let ys = dip(&xs, 3.2e6, 29.0, 0.05);
        let peaks = local_minima(&xs, &ys, -1.0);
        assert_eq!(peaks.len(), 1);
        let p = peaks[0];
        assert!((p.x - 3.2e6).abs() / 3.2e6 < 0.02);
        assert!((p.y + 29.0).abs() < 0.3);
        assert_eq!(p.kind, PeakKind::Interior);
    }

    #[test]
    fn finds_multiple_minima() {
        let xs = logspace(1e3, 1e9, 2401);
        let a = dip(&xs, 3.2e6, 29.0, 0.05);
        let b = dip(&xs, 5.0e7, 5.0, 0.05);
        let ys: Vec<f64> = a.iter().zip(&b).map(|(u, v)| u + v).collect();
        let peaks = local_minima(&xs, &ys, -1.0);
        assert_eq!(peaks.len(), 2);
        assert!(peaks.iter().any(|p| (p.x - 3.2e6).abs() / 3.2e6 < 0.05));
        assert!(peaks.iter().any(|p| (p.x - 5.0e7).abs() / 5.0e7 < 0.05));
    }

    #[test]
    fn threshold_rejects_shallow_dips() {
        let xs = logspace(1e3, 1e9, 1201);
        let ys = dip(&xs, 1e6, 0.5, 0.05);
        assert!(local_minima(&xs, &ys, -1.0).is_empty());
        assert_eq!(local_minima(&xs, &ys, -0.1).len(), 1);
    }

    #[test]
    fn maxima_mirror_minima() {
        let xs = logspace(1e3, 1e9, 1201);
        let ys: Vec<f64> = dip(&xs, 1e6, 10.0, 0.05).iter().map(|v| -v).collect();
        let peaks = local_maxima(&xs, &ys, 1.0);
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].y - 10.0).abs() < 0.2);
    }

    #[test]
    fn dominant_picks_deepest() {
        let xs = logspace(1e3, 1e9, 2401);
        let a = dip(&xs, 3.2e6, 29.0, 0.05);
        let b = dip(&xs, 5.0e7, 5.0, 0.05);
        let ys: Vec<f64> = a.iter().zip(&b).map(|(u, v)| u + v).collect();
        let p = dominant_minimum(&xs, &ys, -1.0).unwrap();
        assert!((p.x - 3.2e6).abs() / 3.2e6 < 0.05);
    }

    #[test]
    fn end_of_range_detected() {
        let xs = logspace(1e3, 1e6, 601);
        // Monotone decreasing toward the right edge, dipping below threshold.
        let ys: Vec<f64> = xs.iter().map(|&x| -(x / 1e6) * 20.0).collect();
        let p = dominant_minimum(&xs, &ys, -1.0).unwrap();
        assert_eq!(p.kind, PeakKind::EndOfRange);
        assert_eq!(p.index, xs.len() - 1);
    }

    #[test]
    fn minmax_when_flat() {
        let xs = logspace(1e3, 1e6, 601);
        let ys: Vec<f64> = xs.iter().map(|&x| -1e-3 * (x / 1e6)).collect();
        let p = dominant_minimum(&xs, &ys, -1.0).unwrap();
        assert_eq!(p.kind, PeakKind::MinMax);
    }

    #[test]
    fn too_short_series() {
        assert!(dominant_minimum(&[1.0, 2.0], &[0.0, -5.0], -1.0).is_none());
        assert!(local_minima(&[1.0, 2.0], &[0.0, -5.0], -1.0).is_empty());
    }

    #[test]
    fn peak_kind_display() {
        assert_eq!(PeakKind::Interior.to_string(), "interior");
        assert_eq!(PeakKind::EndOfRange.to_string(), "end-of-range");
        assert_eq!(PeakKind::MinMax.to_string(), "min/max");
    }
}
