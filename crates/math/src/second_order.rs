//! Second-order (dominant-root) system theory.
//!
//! The methodology assumes that near an oscillation-prone frequency the
//! circuit response is adequately described by the canonical second-order
//! transfer function (paper Eq. 1.1):
//!
//! `T(s) = 1 / (s² + 2ζ·s + 1)`  (normalized to ω_n = 1)
//!
//! All of the quantities in the paper's Table 1 — percent overshoot, phase
//! margin, maximum closed-loop magnitude and the *performance index*
//! `P(ω_n) = −1/ζ²` — are analytic functions of the damping ratio ζ and are
//! implemented here.

use crate::complex::Complex64;

/// A canonical second-order system described by damping ratio and natural
/// frequency.
///
/// ```
/// use loopscope_math::SecondOrder;
/// let sys = SecondOrder::from_damping(0.5, 2.0e6);
/// assert!((sys.percent_overshoot() - 16.3).abs() < 0.1);
/// assert!((sys.performance_index() + 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondOrder {
    zeta: f64,
    natural_freq_hz: f64,
}

impl SecondOrder {
    /// Creates a system from a damping ratio `zeta >= 0` and natural frequency
    /// in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `zeta` is negative or not finite, or if the natural frequency
    /// is not positive.
    pub fn from_damping(zeta: f64, natural_freq_hz: f64) -> Self {
        assert!(
            zeta.is_finite() && zeta >= 0.0,
            "damping ratio must be >= 0"
        );
        assert!(
            natural_freq_hz.is_finite() && natural_freq_hz > 0.0,
            "natural frequency must be positive"
        );
        Self {
            zeta,
            natural_freq_hz,
        }
    }

    /// Recovers a system from a measured stability-plot peak (performance
    /// index, a negative number) and the frequency at which it occurred.
    ///
    /// Implements the inverse of Eq. 1.4: `ζ = sqrt(−1/P)`.
    ///
    /// Returns `None` when the index is not negative (no complex pole pair).
    ///
    /// ```
    /// use loopscope_math::SecondOrder;
    /// let sys = SecondOrder::from_performance_index(-25.0, 3.16e6).unwrap();
    /// assert!((sys.damping_ratio() - 0.2).abs() < 1e-12);
    /// ```
    pub fn from_performance_index(index: f64, natural_freq_hz: f64) -> Option<Self> {
        if !(index.is_finite() && index < 0.0) {
            return None;
        }
        let zeta = (-1.0 / index).sqrt();
        Some(Self::from_damping(zeta, natural_freq_hz))
    }

    /// The damping ratio ζ.
    pub fn damping_ratio(&self) -> f64 {
        self.zeta
    }

    /// The natural (undamped) frequency in hertz.
    pub fn natural_freq_hz(&self) -> f64 {
        self.natural_freq_hz
    }

    /// The damped oscillation frequency `ω_d = ω_n·sqrt(1−ζ²)` in hertz, or
    /// zero for over-damped systems.
    pub fn damped_freq_hz(&self) -> f64 {
        if self.zeta >= 1.0 {
            0.0
        } else {
            self.natural_freq_hz * (1.0 - self.zeta * self.zeta).sqrt()
        }
    }

    /// The paper's performance index `P(ω_n) = −1/ζ²` (Eq. 1.4).
    ///
    /// Returns negative infinity for ζ = 0 (an undamped, oscillating loop).
    pub fn performance_index(&self) -> f64 {
        if self.zeta == 0.0 {
            f64::NEG_INFINITY
        } else {
            -1.0 / (self.zeta * self.zeta)
        }
    }

    /// Percent overshoot of the unit-step response,
    /// `100·exp(−πζ/√(1−ζ²))` for under-damped systems and 0 otherwise.
    pub fn percent_overshoot(&self) -> f64 {
        if self.zeta >= 1.0 {
            0.0
        } else if self.zeta == 0.0 {
            100.0
        } else {
            100.0 * (-std::f64::consts::PI * self.zeta / (1.0 - self.zeta * self.zeta).sqrt()).exp()
        }
    }

    /// Exact phase margin in degrees of the unity-feedback loop whose closed
    /// loop is this second-order system:
    ///
    /// `PM = atan( 2ζ / sqrt( sqrt(1+4ζ⁴) − 2ζ² ) )`
    pub fn phase_margin_deg(&self) -> f64 {
        if self.zeta == 0.0 {
            return 0.0;
        }
        let z2 = self.zeta * self.zeta;
        let inner = ((1.0 + 4.0 * z2 * z2).sqrt() - 2.0 * z2).sqrt();
        (2.0 * self.zeta / inner).atan().to_degrees()
    }

    /// The linearized rule-of-thumb phase margin `PM ≈ 100·ζ` degrees used by
    /// the paper's Table 1 (valid for ζ ≲ 0.7).
    pub fn phase_margin_approx_deg(&self) -> f64 {
        100.0 * self.zeta
    }

    /// Maximum closed-loop magnitude `M_p = 1/(2ζ√(1−ζ²))` for ζ < 1/√2,
    /// and 1 otherwise (no resonant peaking).
    pub fn max_magnitude(&self) -> f64 {
        if self.zeta == 0.0 {
            f64::INFINITY
        } else if self.zeta < std::f64::consts::FRAC_1_SQRT_2 {
            1.0 / (2.0 * self.zeta * (1.0 - self.zeta * self.zeta).sqrt())
        } else {
            1.0
        }
    }

    /// The frequency (hertz) of the resonant magnitude peak
    /// `ω_r = ω_n·sqrt(1−2ζ²)`, or `None` when the response has no peak
    /// (ζ ≥ 1/√2).
    pub fn resonant_freq_hz(&self) -> Option<f64> {
        if self.zeta < std::f64::consts::FRAC_1_SQRT_2 {
            Some(self.natural_freq_hz * (1.0 - 2.0 * self.zeta * self.zeta).sqrt())
        } else {
            None
        }
    }

    /// Evaluates the normalized transfer function `T(jω)` at a frequency given
    /// in hertz (the DC gain is 1).
    pub fn response(&self, freq_hz: f64) -> Complex64 {
        let wn = crate::hz_to_rad(self.natural_freq_hz);
        let w = crate::hz_to_rad(freq_hz);
        let s = Complex64::new(0.0, w / wn);
        (s * s + s * (2.0 * self.zeta) + 1.0).recip()
    }

    /// Magnitude of the normalized transfer function at `freq_hz`.
    pub fn magnitude(&self, freq_hz: f64) -> f64 {
        self.response(freq_hz).abs()
    }

    /// Unit-step response value at time `t` seconds (unit DC gain).
    ///
    /// Covers the under-damped, critically damped and over-damped cases.
    pub fn step_response(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let wn = crate::hz_to_rad(self.natural_freq_hz);
        let z = self.zeta;
        if z < 1.0 {
            let wd = wn * (1.0 - z * z).sqrt();
            let phi = z.acos();
            1.0 - ((-z * wn * t).exp() / (1.0 - z * z).sqrt()) * (wd * t + phi).sin()
        } else if (z - 1.0).abs() < 1e-12 {
            1.0 - (1.0 + wn * t) * (-wn * t).exp()
        } else {
            let s1 = -wn * (z - (z * z - 1.0).sqrt());
            let s2 = -wn * (z + (z * z - 1.0).sqrt());
            1.0 + (s2 * (s1 * t).exp() - s1 * (s2 * t).exp()) / (s1 - s2)
        }
    }
}

/// One row of the paper's Table 1: key performance characteristics of a
/// second-order system (or its dominant root) for a given damping ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Damping ratio ζ.
    pub zeta: f64,
    /// Percent overshoot of the step response.
    pub percent_overshoot: f64,
    /// Phase margin in degrees (approximate, `100·ζ`, as used by the paper).
    pub phase_margin_deg: f64,
    /// Exact phase margin in degrees.
    pub phase_margin_exact_deg: f64,
    /// Maximum closed-loop magnitude `M_p` (infinite for ζ = 0).
    pub max_magnitude: f64,
    /// Performance index `−1/ζ²` (negative infinity for ζ = 0).
    pub performance_index: f64,
}

/// Generates the paper's Table 1 for the standard set of damping ratios
/// `ζ = 1.0, 0.9, …, 0.0`.
///
/// ```
/// let table = loopscope_math::second_order::table1();
/// assert_eq!(table.len(), 11);
/// // ζ = 0.5 row: 16 % overshoot, 50°, Mp 1.15, index −4.
/// let row = table.iter().find(|r| (r.zeta - 0.5).abs() < 1e-12).unwrap();
/// assert!((row.percent_overshoot - 16.3).abs() < 0.1);
/// assert!((row.performance_index + 4.0).abs() < 1e-12);
/// ```
pub fn table1() -> Vec<Table1Row> {
    (0..=10)
        .rev()
        .map(|i| {
            let zeta = i as f64 / 10.0;
            let sys = SecondOrder::from_damping(zeta, 1.0);
            Table1Row {
                zeta,
                percent_overshoot: sys.percent_overshoot(),
                phase_margin_deg: sys.phase_margin_approx_deg(),
                phase_margin_exact_deg: sys.phase_margin_deg(),
                max_magnitude: sys.max_magnitude(),
                performance_index: sys.performance_index(),
            }
        })
        .collect()
}

/// Estimates the damping ratio from a measured (negative) stability-plot peak
/// value, i.e. the inverse of the performance index relation.
///
/// Returns `None` when `peak` is not strictly negative.
///
/// ```
/// let zeta = loopscope_math::second_order::damping_from_peak(-28.9).unwrap();
/// assert!((zeta - 0.186).abs() < 0.001);
/// ```
pub fn damping_from_peak(peak: f64) -> Option<f64> {
    if peak.is_finite() && peak < 0.0 {
        Some((-1.0 / peak).sqrt())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_index_matches_eq_1_4() {
        for zeta in [0.1, 0.2, 0.3, 0.5, 0.7, 1.0] {
            let sys = SecondOrder::from_damping(zeta, 1.0e6);
            assert!((sys.performance_index() + 1.0 / (zeta * zeta)).abs() < 1e-12);
        }
    }

    #[test]
    fn overshoot_matches_paper_table1() {
        // Paper Table 1 (rounded to integer percent).
        let expected = [
            (1.0, 0.0),
            (0.9, 0.0),
            (0.8, 2.0),
            (0.7, 5.0),
            (0.6, 10.0),
            (0.5, 16.0),
            (0.4, 25.0),
            (0.3, 37.0),
            (0.2, 53.0),
            (0.1, 73.0),
            (0.0, 100.0),
        ];
        for (zeta, pct) in expected {
            let sys = SecondOrder::from_damping(zeta, 1.0);
            assert!(
                (sys.percent_overshoot() - pct).abs() < 1.6,
                "zeta={zeta}: got {} expected {pct}",
                sys.percent_overshoot()
            );
        }
    }

    #[test]
    fn max_magnitude_matches_paper_table1() {
        let expected = [
            (0.7, 1.01),
            (0.6, 1.04),
            (0.5, 1.15),
            (0.4, 1.4),
            (0.3, 1.8),
            (0.2, 2.6),
            (0.1, 5.0),
        ];
        for (zeta, mp) in expected {
            let sys = SecondOrder::from_damping(zeta, 1.0);
            assert!(
                (sys.max_magnitude() - mp).abs() < 0.07 * mp,
                "zeta={zeta}: got {} expected {mp}",
                sys.max_magnitude()
            );
        }
    }

    #[test]
    fn phase_margin_monotone_in_damping() {
        let mut last = -1.0;
        for i in 0..=9 {
            let zeta = i as f64 / 10.0;
            let pm = SecondOrder::from_damping(zeta, 1.0).phase_margin_deg();
            assert!(pm >= last);
            last = pm;
        }
    }

    #[test]
    fn phase_margin_exact_near_approx_for_small_zeta() {
        for zeta in [0.1, 0.2, 0.3] {
            let sys = SecondOrder::from_damping(zeta, 1.0);
            let diff = (sys.phase_margin_deg() - sys.phase_margin_approx_deg()).abs();
            assert!(
                diff < 4.0,
                "zeta={zeta}: exact {} vs approx {}",
                sys.phase_margin_deg(),
                sys.phase_margin_approx_deg()
            );
        }
    }

    #[test]
    fn from_performance_index_roundtrip() {
        for zeta in [0.05, 0.2, 0.45, 0.9] {
            let sys = SecondOrder::from_damping(zeta, 7.0e5);
            let back = SecondOrder::from_performance_index(sys.performance_index(), 7.0e5).unwrap();
            assert!((back.damping_ratio() - zeta).abs() < 1e-12);
        }
        assert!(SecondOrder::from_performance_index(1.0, 1.0).is_none());
        assert!(SecondOrder::from_performance_index(0.0, 1.0).is_none());
    }

    #[test]
    fn magnitude_peak_location_and_height() {
        let sys = SecondOrder::from_damping(0.25, 1.0e6);
        let wr = sys.resonant_freq_hz().unwrap();
        let mp = sys.max_magnitude();
        // The magnitude at the resonant frequency equals Mp...
        assert!((sys.magnitude(wr) - mp).abs() < 1e-9);
        // ... and is larger than slightly off-peak values.
        assert!(sys.magnitude(wr * 1.05) < mp);
        assert!(sys.magnitude(wr * 0.95) < mp);
    }

    #[test]
    fn no_resonance_for_high_damping() {
        assert!(SecondOrder::from_damping(0.8, 1.0)
            .resonant_freq_hz()
            .is_none());
        assert_eq!(SecondOrder::from_damping(0.8, 1.0).max_magnitude(), 1.0);
    }

    #[test]
    fn step_response_overshoot_consistent() {
        // Numerically locate the first maximum of the analytic step response
        // and compare with the analytic percent overshoot.
        for zeta in [0.2, 0.4, 0.6] {
            let sys = SecondOrder::from_damping(zeta, 1.0);
            let mut peak: f64 = 0.0;
            let mut t = 0.0;
            while t < 5.0 {
                peak = peak.max(sys.step_response(t));
                t += 1e-4;
            }
            let overshoot = (peak - 1.0) * 100.0;
            assert!(
                (overshoot - sys.percent_overshoot()).abs() < 0.5,
                "zeta={zeta}: step {overshoot} vs analytic {}",
                sys.percent_overshoot()
            );
        }
    }

    #[test]
    fn step_response_settles_to_one() {
        for zeta in [0.3, 1.0, 2.0] {
            let sys = SecondOrder::from_damping(zeta, 1.0);
            let v = sys.step_response(50.0);
            assert!((v - 1.0).abs() < 1e-6, "zeta={zeta}: {v}");
        }
    }

    #[test]
    fn dc_gain_is_unity() {
        let sys = SecondOrder::from_damping(0.5, 1.0e3);
        assert!((sys.magnitude(1e-3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn table1_structure() {
        let t = table1();
        assert_eq!(t.len(), 11);
        assert_eq!(t[0].zeta, 1.0);
        assert_eq!(t[10].zeta, 0.0);
        assert_eq!(t[10].performance_index, f64::NEG_INFINITY);
        assert_eq!(t[10].max_magnitude, f64::INFINITY);
        // Performance index is monotone decreasing as damping decreases.
        for w in t.windows(2) {
            assert!(w[1].performance_index <= w[0].performance_index);
        }
    }

    #[test]
    fn damping_from_peak_examples() {
        // Paper Fig. 4: a peak of −28.9 corresponds to ζ slightly below 0.2.
        let z = damping_from_peak(-28.9).unwrap();
        assert!(z > 0.17 && z < 0.2);
        assert!(damping_from_peak(5.0).is_none());
        assert!(damping_from_peak(f64::NAN).is_none());
    }
}
