//! Numerical differentiation on (possibly non-uniform) grids.
//!
//! The stability plot of Milev & Burt (Eq. 1.3) is a doubly normalized second
//! derivative of the magnitude response with respect to frequency; written in
//! logarithmic coordinates it is exactly
//!
//! `P(ω) = d² ln|T| / d(ln ω)²`
//!
//! i.e. the curvature of the Bode magnitude plot. This module provides the
//! non-uniform-grid gradient used to evaluate that expression on the
//! logarithmically spaced AC sweeps produced by the simulator.

/// Computes the derivative `dy/dx` on a strictly increasing, possibly
/// non-uniform grid using second-order accurate finite differences.
///
/// Interior points use the three-point non-uniform central difference;
/// endpoints use one-sided three-point formulas, falling back to two-point
/// differences when fewer than three samples are available.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`, if fewer than two samples are provided, or
/// if `x` is not strictly increasing.
///
/// ```
/// use loopscope_math::diff::gradient;
/// let x: Vec<f64> = (0..50).map(|i| 0.1 * i as f64).collect();
/// let y: Vec<f64> = x.iter().map(|&x| x * x).collect();
/// let dy = gradient(&x, &y);
/// // d(x²)/dx = 2x, exact for a quadratic with 2nd-order differences.
/// for (xi, di) in x.iter().zip(&dy) {
///     assert!((di - 2.0 * xi).abs() < 1e-9);
/// }
/// ```
pub fn gradient(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "x and y must have the same length");
    let n = x.len();
    assert!(n >= 2, "need at least two samples to differentiate");
    for w in x.windows(2) {
        assert!(w[1] > w[0], "grid must be strictly increasing");
    }

    let mut d = vec![0.0; n];
    if n == 2 {
        let slope = (y[1] - y[0]) / (x[1] - x[0]);
        d[0] = slope;
        d[1] = slope;
        return d;
    }

    // Interior: non-uniform central difference.
    for i in 1..n - 1 {
        let h1 = x[i] - x[i - 1];
        let h2 = x[i + 1] - x[i];
        d[i] = (h1 * h1 * y[i + 1] - h2 * h2 * y[i - 1] + (h2 * h2 - h1 * h1) * y[i])
            / (h1 * h2 * (h1 + h2));
    }

    // Forward one-sided three-point at the left edge.
    {
        let h1 = x[1] - x[0];
        let h2 = x[2] - x[1];
        d[0] = -(2.0 * h1 + h2) / (h1 * (h1 + h2)) * y[0] + (h1 + h2) / (h1 * h2) * y[1]
            - h1 / (h2 * (h1 + h2)) * y[2];
    }
    // Backward one-sided three-point at the right edge.
    {
        let h1 = x[n - 2] - x[n - 3];
        let h2 = x[n - 1] - x[n - 2];
        d[n - 1] = h2 / (h1 * (h1 + h2)) * y[n - 3] - (h1 + h2) / (h1 * h2) * y[n - 2]
            + (h1 + 2.0 * h2) / (h2 * (h1 + h2)) * y[n - 1];
    }
    d
}

/// Computes `dy/d(ln x)` on a positive, strictly increasing grid.
///
/// This is the first normalized derivative used by the stability plot.
///
/// # Panics
///
/// Panics under the same conditions as [`gradient`], or if any `x` is not
/// positive.
pub fn log_gradient(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert!(
        x.iter().all(|&v| v > 0.0),
        "logarithmic gradient requires positive abscissae"
    );
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    gradient(&lx, y)
}

/// Computes the log-log curvature `d²(ln y)/d(ln x)²`.
///
/// This is exactly the stability-plot function of Eq. 1.3 when `y = |T(jω)|`
/// and `x = ω`: for a second-order dominant pole pair the result has a
/// negative peak of `−1/ζ²` at the natural frequency.
///
/// # Panics
///
/// Panics under the same conditions as [`gradient`], or if any `x` or `y`
/// sample is not positive (the magnitude of a nodal response is positive for
/// any physical circuit with nonzero stimulus).
///
/// ```
/// use loopscope_math::{diff::log_log_curvature, logspace};
/// // |T| for a 2nd-order system with ζ = 0.5, ωn = 1.
/// let w = logspace(0.01, 100.0, 4001);
/// let mag: Vec<f64> = w
///     .iter()
///     .map(|&w| 1.0 / (((1.0 - w * w).powi(2) + (2.0 * 0.5 * w).powi(2)).sqrt()))
///     .collect();
/// let p = log_log_curvature(&w, &mag);
/// let min = p.iter().cloned().fold(f64::INFINITY, f64::min);
/// // Performance index −1/ζ² = −4.
/// assert!((min - (-4.0)).abs() < 0.05);
/// ```
pub fn log_log_curvature(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert!(
        y.iter().all(|&v| v > 0.0),
        "log-log curvature requires positive ordinate samples"
    );
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    let first = gradient(&lx, &ly);
    gradient(&lx, &first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logspace;

    #[test]
    fn gradient_of_linear_is_constant() {
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 0.3 + 1.0).collect();
        let y: Vec<f64> = x.iter().map(|&x| 3.0 * x - 7.0).collect();
        for d in gradient(&x, &y) {
            assert!((d - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_two_points() {
        let d = gradient(&[0.0, 2.0], &[1.0, 5.0]);
        assert_eq!(d, vec![2.0, 2.0]);
    }

    #[test]
    fn gradient_nonuniform_quadratic_exact() {
        // Quadratics are differentiated exactly by the 3-point formulas even
        // on a non-uniform grid.
        let x = vec![0.0, 0.1, 0.35, 0.7, 1.5, 2.0];
        let y: Vec<f64> = x.iter().map(|&x| 2.0 * x * x - x + 1.0).collect();
        let d = gradient(&x, &y);
        for (xi, di) in x.iter().zip(&d) {
            assert!((di - (4.0 * xi - 1.0)).abs() < 1e-12, "x={xi} d={di}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn gradient_rejects_unsorted() {
        gradient(&[0.0, 1.0, 0.5], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn log_gradient_of_power_law() {
        // y = x^k  ⇒ dy/dlnx = k·x^k
        let x = logspace(1.0, 1e4, 2001);
        let k = -2.0;
        let y: Vec<f64> = x.iter().map(|&x| x.powf(k)).collect();
        let d = log_gradient(&x, &y);
        for (yi, di) in y.iter().zip(&d) {
            assert!((di - k * yi).abs() < 1e-4 * yi.abs().max(1e-12));
        }
    }

    #[test]
    fn curvature_of_power_law_is_zero() {
        // A pure power law is a straight line on a log-log plot: curvature 0.
        // This is the paper's claim that real poles/zeros far from resonance
        // are filtered out by the double differentiation.
        let x = logspace(1e2, 1e8, 1201);
        let y: Vec<f64> = x.iter().map(|&x| 3.0e4 / x).collect();
        let p = log_log_curvature(&x, &y);
        for v in &p {
            assert!(v.abs() < 1e-6, "curvature {v} should vanish");
        }
    }

    #[test]
    fn curvature_peak_matches_performance_index() {
        for zeta in [0.1, 0.2, 0.3, 0.5, 0.7] {
            let w = logspace(0.001, 1000.0, 6001);
            let mag: Vec<f64> = w
                .iter()
                .map(|&w| 1.0 / (((1.0 - w * w).powi(2) + (2.0 * zeta * w).powi(2)).sqrt()))
                .collect();
            let p = log_log_curvature(&w, &mag);
            let min = p.iter().cloned().fold(f64::INFINITY, f64::min);
            let expected = -1.0 / (zeta * zeta);
            assert!(
                (min - expected).abs() < 0.02 * expected.abs(),
                "zeta={zeta}: min={min} expected={expected}"
            );
        }
    }
}
