//! Frequency grids.
//!
//! AC analysis and the stability plot are evaluated over a broad frequency
//! range (the paper sweeps from audio frequencies to beyond 100 MHz), so a
//! logarithmically spaced grid is the natural choice. [`FrequencyGrid`]
//! couples a sweep specification with its realized sample points.

use crate::Hertz;

/// Returns `n` linearly spaced points between `start` and `stop` inclusive.
///
/// Returns an empty vector for `n == 0` and `[start]` for `n == 1`.
///
/// ```
/// let v = loopscope_math::linspace(0.0, 1.0, 5);
/// assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![start],
        _ => {
            let step = (stop - start) / (n - 1) as f64;
            (0..n).map(|i| start + step * i as f64).collect()
        }
    }
}

/// Returns `n` logarithmically spaced points between `start` and `stop`
/// inclusive (both must be positive).
///
/// # Panics
///
/// Panics if `start <= 0`, `stop <= 0`.
///
/// ```
/// let v = loopscope_math::logspace(1.0, 100.0, 3);
/// assert!((v[1] - 10.0).abs() < 1e-9);
/// ```
pub fn logspace(start: f64, stop: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && stop > 0.0,
        "logspace requires positive bounds"
    );
    linspace(start.log10(), stop.log10(), n)
        .into_iter()
        .map(|e| 10f64.powf(e))
        .collect()
}

/// Sweep specification for an AC analysis, mirroring SPICE `.ac` syntax.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepKind {
    /// Logarithmic sweep with the given number of points per decade.
    Decade {
        /// Number of frequency points per decade.
        points_per_decade: usize,
    },
    /// Linear sweep with the given total number of points.
    Linear {
        /// Total number of frequency points.
        points: usize,
    },
    /// Explicitly listed sample points (golden-data validation pins exact
    /// frequencies so comparisons carry no interpolation error).
    Points {
        /// Total number of frequency points.
        points: usize,
    },
}

/// A frequency grid: sweep bounds plus realized sample points in hertz.
///
/// ```
/// use loopscope_math::FrequencyGrid;
/// let grid = FrequencyGrid::log_decade(1e3, 1e9, 20);
/// assert!(grid.len() > 100);
/// assert!((grid.freqs()[0] - 1e3).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyGrid {
    start: Hertz,
    stop: Hertz,
    kind: SweepKind,
    freqs: Vec<Hertz>,
}

impl FrequencyGrid {
    /// Creates a logarithmic grid with `points_per_decade` points per decade
    /// between `start` and `stop` hertz (inclusive endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `start <= 0`, `stop <= start` or `points_per_decade == 0`.
    pub fn log_decade(start: Hertz, stop: Hertz, points_per_decade: usize) -> Self {
        assert!(start > 0.0, "start frequency must be positive");
        assert!(stop > start, "stop frequency must exceed start frequency");
        assert!(points_per_decade > 0, "need at least one point per decade");
        let decades = (stop / start).log10();
        let n = ((decades * points_per_decade as f64).ceil() as usize).max(1) + 1;
        Self {
            start,
            stop,
            kind: SweepKind::Decade { points_per_decade },
            freqs: logspace(start, stop, n),
        }
    }

    /// Creates a linear grid with `points` samples between `start` and `stop`.
    ///
    /// # Panics
    ///
    /// Panics if `stop <= start` or `points < 2`.
    pub fn linear(start: Hertz, stop: Hertz, points: usize) -> Self {
        assert!(stop > start, "stop frequency must exceed start frequency");
        assert!(points >= 2, "need at least two points");
        Self {
            start,
            stop,
            kind: SweepKind::Linear { points },
            freqs: linspace(start, stop, points),
        }
    }

    /// Creates a grid from explicitly listed sample points in hertz.
    ///
    /// The points must be finite, positive and strictly ascending. Unlike
    /// the swept constructors a single point is allowed — golden-data
    /// validation pins individual frequencies and solves exactly there.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, contains a non-finite or non-positive
    /// value, or is not strictly ascending.
    ///
    /// ```
    /// use loopscope_math::{FrequencyGrid, SweepKind};
    /// let grid = FrequencyGrid::from_points(vec![10.0, 159.155, 2.0e4]);
    /// assert_eq!(grid.len(), 3);
    /// assert_eq!(grid.kind(), SweepKind::Points { points: 3 });
    /// assert_eq!(grid.freqs()[1], 159.155);
    /// ```
    pub fn from_points(points: Vec<Hertz>) -> Self {
        assert!(!points.is_empty(), "need at least one frequency point");
        for f in &points {
            assert!(
                f.is_finite() && *f > 0.0,
                "frequency points must be finite and positive, got {f}"
            );
        }
        for w in points.windows(2) {
            assert!(
                w[1] > w[0],
                "frequency points must be strictly ascending ({} then {})",
                w[0],
                w[1]
            );
        }
        Self {
            start: points[0],
            stop: *points.last().expect("non-empty by assertion"),
            kind: SweepKind::Points {
                points: points.len(),
            },
            freqs: points,
        }
    }

    /// Start frequency in hertz.
    pub fn start(&self) -> Hertz {
        self.start
    }

    /// Stop frequency in hertz.
    pub fn stop(&self) -> Hertz {
        self.stop
    }

    /// The sweep kind used to construct this grid.
    pub fn kind(&self) -> SweepKind {
        self.kind
    }

    /// The realized frequency samples in hertz, ascending.
    pub fn freqs(&self) -> &[Hertz] {
        &self.freqs
    }

    /// Number of frequency samples.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Returns `true` when the grid holds no samples.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Iterates over the frequency samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Hertz> {
        self.freqs.iter()
    }
}

impl<'a> IntoIterator for &'a FrequencyGrid {
    type Item = &'a Hertz;
    type IntoIter = std::slice::Iter<'a, Hertz>;
    fn into_iter(self) -> Self::IntoIter {
        self.freqs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let v = linspace(-1.0, 1.0, 11);
        assert_eq!(v.len(), 11);
        assert!((v[0] + 1.0).abs() < 1e-15);
        assert!((v[10] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn linspace_degenerate() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(2.0, 5.0, 1), vec![2.0]);
    }

    #[test]
    fn logspace_is_monotone_and_bounded() {
        let v = logspace(1e3, 1e9, 61);
        assert_eq!(v.len(), 61);
        assert!((v[0] - 1e3).abs() / 1e3 < 1e-12);
        assert!((v[60] - 1e9).abs() / 1e9 < 1e-12);
        for w in v.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "positive bounds")]
    fn logspace_rejects_nonpositive() {
        logspace(0.0, 10.0, 3);
    }

    #[test]
    fn decade_grid_density() {
        let grid = FrequencyGrid::log_decade(1e3, 1e6, 10);
        // 3 decades at 10 points/decade → 31 points.
        assert_eq!(grid.len(), 31);
        assert_eq!(
            grid.kind(),
            SweepKind::Decade {
                points_per_decade: 10
            }
        );
    }

    #[test]
    fn linear_grid() {
        let grid = FrequencyGrid::linear(0.5, 10.5, 11);
        assert_eq!(grid.len(), 11);
        assert!((grid.freqs()[5] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn grid_iteration() {
        let grid = FrequencyGrid::log_decade(1.0, 10.0, 4);
        let collected: Vec<f64> = grid.iter().copied().collect();
        assert_eq!(collected, grid.freqs());
        let by_ref: Vec<f64> = (&grid).into_iter().copied().collect();
        assert_eq!(by_ref, collected);
    }

    #[test]
    #[should_panic(expected = "stop frequency must exceed")]
    fn decade_grid_rejects_inverted_bounds() {
        FrequencyGrid::log_decade(1e6, 1e3, 10);
    }

    #[test]
    fn points_grid_preserves_exact_values() {
        let pts = vec![159.15494309189535, 1.0e3, 1.5915494309189535e5];
        let grid = FrequencyGrid::from_points(pts.clone());
        assert_eq!(grid.freqs(), &pts[..]);
        assert_eq!(grid.start(), pts[0]);
        assert_eq!(grid.stop(), pts[2]);
        assert_eq!(grid.kind(), SweepKind::Points { points: 3 });
    }

    #[test]
    fn points_grid_allows_single_point() {
        let grid = FrequencyGrid::from_points(vec![42.0]);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.start(), grid.stop());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn points_grid_rejects_unsorted() {
        FrequencyGrid::from_points(vec![10.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn points_grid_rejects_nonpositive() {
        FrequencyGrid::from_points(vec![0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "at least one frequency point")]
    fn points_grid_rejects_empty() {
        FrequencyGrid::from_points(Vec::new());
    }
}
