//! Dense matrices with partial-pivot LU factorization.
//!
//! The SPICE engine in `loopscope-spice` uses the sparse solver from
//! `loopscope-sparse` for circuit matrices, but a dense solver remains useful
//! for small systems, for reference solutions in tests, and as a fallback.
//! Both a real ([`DMatrix`]) and a complex ([`CMatrix`]) variant are provided.

use crate::complex::Complex64;
use std::fmt;

/// Error produced when LU factorization fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is structurally or numerically singular; the field is the
    /// pivot column where elimination broke down.
    Singular(usize),
    /// Dimension mismatch between the matrix and a right-hand side.
    DimensionMismatch {
        /// Number of rows expected by the matrix.
        expected: usize,
        /// Length of the supplied right-hand side.
        got: usize,
    },
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::Singular(col) => write!(f, "matrix is singular at pivot column {col}"),
            LuError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LuError {}

/// A dense, row-major real matrix.
///
/// ```
/// use loopscope_math::DMatrix;
/// let mut a = DMatrix::zeros(2, 2);
/// a[(0, 0)] = 2.0; a[(0, 1)] = 1.0;
/// a[(1, 0)] = 1.0; a[(1, 1)] = 3.0;
/// let x = a.solve(&[5.0, 10.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), loopscope_math::LuError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "inconsistent row length");
            for (j, v) in row.iter().enumerate() {
                m[(i, j)] = *v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Solves `A·x = b` by partial-pivot Gaussian elimination on a copy.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::Singular`] when a pivot is (near) zero and
    /// [`LuError::DimensionMismatch`] when `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LuError> {
        if b.len() != self.rows {
            return Err(LuError::DimensionMismatch {
                expected: self.rows,
                got: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivoting.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LuError::Singular(col));
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= a[i * n + j] * x[j];
            }
            x[i] = acc / a[i * n + i];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// A dense, row-major complex matrix with an LU solver.
///
/// ```
/// use loopscope_math::{CMatrix, Complex64};
/// let mut a = CMatrix::zeros(1, 1);
/// a[(0, 0)] = Complex64::new(0.0, 2.0);
/// let x = a.solve(&[Complex64::new(2.0, 0.0)])?;
/// assert!((x[0] - Complex64::new(0.0, -1.0)).abs() < 1e-12);
/// # Ok::<(), loopscope_math::LuError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Solves `A·x = b` by partial-pivot Gaussian elimination on a copy.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::Singular`] when a pivot is (near) zero and
    /// [`LuError::DimensionMismatch`] when `b.len() != self.rows()`.
    pub fn solve(&self, b: &[Complex64]) -> Result<Vec<Complex64>, LuError> {
        if b.len() != self.rows {
            return Err(LuError::DimensionMismatch {
                expected: self.rows,
                got: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LuError::Singular(col));
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == Complex64::ZERO {
                    continue;
                }
                for j in col..n {
                    let update = factor * a[col * n + j];
                    a[r * n + j] -= update;
                }
                let update = factor * x[col];
                x[r] -= update;
            }
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= a[i * n + j] * x[j];
            }
            x[i] = acc / a[i * n + i];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_solve_identity() {
        let a = DMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn real_solve_requires_pivoting() {
        // First pivot is zero without row swaps.
        let a = DMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn real_solve_3x3() {
        let a = DMatrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ]);
        let x_true = vec![1.0, 2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(LuError::Singular(_))));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = DMatrix::identity(3);
        assert!(matches!(
            a.solve(&[1.0]),
            Err(LuError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn complex_solve_roundtrip() {
        let n = 5;
        let mut a = CMatrix::zeros(n, n);
        // Diagonally dominant complex matrix.
        for i in 0..n {
            for j in 0..n {
                let v = Complex64::new((i as f64 - j as f64).sin(), (i * j) as f64 * 0.1);
                a[(i, j)] = v;
            }
            a[(i, i)] = Complex64::new(10.0 + i as f64, 5.0);
        }
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((*xi - *ti).abs() < 1e-10);
        }
    }

    #[test]
    fn complex_identity() {
        let a = CMatrix::identity(3);
        let b = vec![
            Complex64::new(1.0, 1.0),
            Complex64::new(-2.0, 0.5),
            Complex64::ZERO,
        ];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn lu_error_display() {
        assert_eq!(
            LuError::Singular(3).to_string(),
            "matrix is singular at pivot column 3"
        );
        assert_eq!(
            LuError::DimensionMismatch {
                expected: 2,
                got: 1
            }
            .to_string(),
            "dimension mismatch: expected 2, got 1"
        );
    }
}
