//! Complex arithmetic.
//!
//! A small, self-contained complex number type. AC small-signal analysis
//! assembles and solves complex linear systems `Y(jω) · x = b`, and the
//! stability methodology post-processes complex nodal responses, so this type
//! is used pervasively across the workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use loopscope_math::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// let c = a * b;
/// assert_eq!(c, Complex64::new(5.0, 5.0));
/// assert!((a.abs() - 5.0_f64.sqrt()).abs() < 1e-15);
/// ```
// `repr(C)` pins the `(re, im)` field order in memory: the SIMD kernels in
// `loopscope-sparse` reinterpret `&[Complex64]` as split-lane `f64` pairs and
// need the layout guaranteed, not merely what the compiler happens to pick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a new complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase in radians).
    ///
    /// ```
    /// use loopscope_math::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        Self {
            re: mag * phase.cos(),
            im: mag * phase.sin(),
        }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Returns the magnitude (modulus) `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared magnitude `|z|²`, cheaper than [`abs`](Self::abs).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the phase in degrees, in `(-180, 180]`.
    #[inline]
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }

    /// Returns the multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Returns the principal square root.
    ///
    /// ```
    /// use loopscope_math::Complex64;
    /// let z = Complex64::new(-4.0, 0.0).sqrt();
    /// assert!(z.re.abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Returns the complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Returns the principal natural logarithm.
    pub fn ln(self) -> Self {
        Self::new(self.abs().ln(), self.arg())
    }

    /// Returns `(magnitude, phase)` polar form.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Magnitude in decibels, `20·log10(|z|)`.
    ///
    /// Returns `-inf` for a zero magnitude.
    #[inline]
    pub fn abs_db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Self::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Self::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close(a + b, Complex64::new(-2.0, 2.5)));
        assert!(close(a - b, Complex64::new(4.0, 1.5)));
        assert!(close(a * b, Complex64::new(-4.0, -5.5)));
        assert!(close((a / b) * b, a));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, -4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, 4.0));
        assert!((a.abs() - 5.0).abs() < 1e-15);
        assert!((a.norm_sqr() - 25.0).abs() < 1e-15);
    }

    #[test]
    fn recip_is_inverse() {
        let a = Complex64::new(0.3, -1.7);
        assert!(close(a * a.recip(), Complex64::ONE));
    }

    #[test]
    fn polar_roundtrip() {
        let a = Complex64::new(-2.0, 1.0);
        let (r, th) = a.to_polar();
        assert!(close(Complex64::from_polar(r, th), a));
    }

    #[test]
    fn sqrt_squares_back() {
        for z in [
            Complex64::new(4.0, 0.0),
            Complex64::new(-1.0, 0.0),
            Complex64::new(3.0, -7.0),
        ] {
            let s = z.sqrt();
            assert!(close(s * s, z));
        }
    }

    #[test]
    fn exp_ln_roundtrip() {
        let z = Complex64::new(0.5, 1.2);
        assert!(close(z.exp().ln(), z));
    }

    #[test]
    fn db_of_unit_is_zero() {
        assert!(Complex64::ONE.abs_db().abs() < 1e-12);
        assert!((Complex64::new(10.0, 0.0).abs_db() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn sum_iterator() {
        let s: Complex64 = (0..4).map(|i| Complex64::new(i as f64, 1.0)).sum();
        assert!(close(s, Complex64::new(6.0, 4.0)));
    }

    #[test]
    fn mixed_real_ops() {
        let a = Complex64::new(1.0, 1.0);
        assert!(close(a + 1.0, Complex64::new(2.0, 1.0)));
        assert!(close(a - 1.0, Complex64::new(0.0, 1.0)));
        assert!(close(a * 2.0, Complex64::new(2.0, 2.0)));
        assert!(close(a / 2.0, Complex64::new(0.5, 0.5)));
        assert!(close(2.0 * a, Complex64::new(2.0, 2.0)));
    }
}
