//! Property-based tests for the numerical foundations.

use loopscope_math::diff::{gradient, log_log_curvature};
use loopscope_math::peaks::{dominant_minimum, PeakKind};
use loopscope_math::second_order::damping_from_peak;
use loopscope_math::{logspace, SecondOrder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's core relation: for any under-damped second-order system the
    /// stability plot computed from its magnitude response has a minimum of
    /// −1/ζ² at the natural frequency, and inverting the peak recovers ζ.
    #[test]
    fn stability_peak_recovers_damping(
        zeta in 0.05f64..0.8,
        fn_exp in 3.0f64..8.0,
    ) {
        let fn_hz = 10f64.powf(fn_exp);
        let sys = SecondOrder::from_damping(zeta, fn_hz);
        let freqs = logspace(fn_hz / 1.0e3, fn_hz * 1.0e3, 2401);
        let mags: Vec<f64> = freqs.iter().map(|&f| sys.magnitude(f)).collect();
        let plot = log_log_curvature(&freqs, &mags);
        let peak = dominant_minimum(&freqs, &plot, -0.5).expect("peak exists");
        prop_assert_eq!(peak.kind, PeakKind::Interior);
        let recovered = damping_from_peak(peak.y).expect("negative peak");
        prop_assert!((recovered - zeta).abs() < 0.03 * zeta.max(0.2),
            "zeta {} recovered {}", zeta, recovered);
        prop_assert!((peak.x - fn_hz).abs() / fn_hz < 0.05);
    }

    /// Overshoot, resonant peaking and the performance index are all monotone
    /// in the damping ratio.
    #[test]
    fn second_order_monotonicity(z1 in 0.02f64..0.95, z2 in 0.02f64..0.95) {
        let (lo, hi) = if z1 < z2 { (z1, z2) } else { (z2, z1) };
        prop_assume!(hi - lo > 1e-3);
        let a = SecondOrder::from_damping(lo, 1.0e6);
        let b = SecondOrder::from_damping(hi, 1.0e6);
        prop_assert!(a.percent_overshoot() >= b.percent_overshoot());
        prop_assert!(a.max_magnitude() >= b.max_magnitude());
        prop_assert!(a.performance_index() <= b.performance_index());
        prop_assert!(a.phase_margin_deg() <= b.phase_margin_deg());
    }

    /// The step response always settles to 1 and its overshoot matches the
    /// analytic percent-overshoot expression.
    #[test]
    fn step_response_consistency(zeta in 0.1f64..1.5) {
        let sys = SecondOrder::from_damping(zeta, 1.0);
        let settle = sys.step_response(80.0);
        prop_assert!((settle - 1.0).abs() < 1e-4);
        let mut peak: f64 = 0.0;
        let mut t = 0.0;
        while t < 10.0 {
            peak = peak.max(sys.step_response(t));
            t += 2.0e-3;
        }
        let overshoot = (peak - 1.0).max(0.0) * 100.0;
        prop_assert!((overshoot - sys.percent_overshoot()).abs() < 1.0,
            "zeta {}: {} vs {}", zeta, overshoot, sys.percent_overshoot());
    }

    /// Differentiating any quadratic on any (sorted, distinct) grid is exact.
    #[test]
    fn gradient_exact_for_quadratics(
        mut xs in prop::collection::vec(-100.0f64..100.0, 4..40),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        c in -3.0f64..3.0,
    ) {
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        xs.dedup_by(|p, q| (*p - *q).abs() < 1e-6);
        prop_assume!(xs.len() >= 3);
        let ys: Vec<f64> = xs.iter().map(|&x| a * x * x + b * x + c).collect();
        let d = gradient(&xs, &ys);
        for (x, dv) in xs.iter().zip(&d) {
            prop_assert!((dv - (2.0 * a * x + b)).abs() < 1e-6 * (1.0 + dv.abs()));
        }
    }

    /// A pure power law (straight line in log-log coordinates) has zero
    /// curvature — the "real poles leave no signature" property in its ideal
    /// asymptotic form.
    #[test]
    fn power_law_has_zero_curvature(k in -3.0f64..3.0, scale in 0.1f64..1.0e6) {
        let freqs = logspace(1.0, 1.0e6, 601);
        let mags: Vec<f64> = freqs.iter().map(|&f| scale * f.powf(k)).collect();
        let curv = log_log_curvature(&freqs, &mags);
        for v in curv {
            prop_assert!(v.abs() < 1e-5, "curvature {} for exponent {}", v, k);
        }
    }
}
