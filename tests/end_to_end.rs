//! Cross-crate integration tests: netlist → operating point → AC probe →
//! stability plot → report, exercised through the umbrella crate's public API.

use loopscope::prelude::*;
use loopscope_circuits::blocks::{series_rlc, series_rlc_damping, series_rlc_natural_freq};
use loopscope_circuits::opamp_with_bias;
use loopscope_core::baseline::transient_overshoot;
use loopscope_validate::Tolerance;

fn fast_options(f_start: f64, f_stop: f64) -> StabilityOptions {
    StabilityOptions {
        f_start,
        f_stop,
        points_per_decade: 80,
        ..Default::default()
    }
}

/// The complete pipeline on a circuit built from a text netlist: a series RLC
/// with ζ = 0.25 described in SPICE syntax, probed without modification.
#[test]
fn netlist_to_stability_estimate() {
    let netlist = r"
ringing rlc
V1 in 0 DC 0
R1 in mid 500
L1 mid out 1m
C1 out 0 1n
.end
";
    let circuit = parse_netlist(netlist).expect("netlist parses");
    let out = circuit.find_node("out").expect("out node exists");
    let analyzer = StabilityAnalyzer::new(circuit, fast_options(1.0e3, 1.0e7)).unwrap();
    let result = analyzer.single_node(out).unwrap();
    let est = result.estimate.expect("complex pole pair");
    let zeta = series_rlc_damping(500.0, 1.0e-3, 1.0e-9);
    Tolerance::absolute(0.02).assert_close("zeta", "V(out) peak", est.damping_ratio, zeta);
    Tolerance::relative(0.03).assert_close(
        "natural frequency [Hz]",
        "V(out) peak",
        est.natural_freq_hz,
        series_rlc_natural_freq(1.0e-3, 1.0e-9),
    );
}

/// The stability-plot estimate and the transient-overshoot baseline must agree
/// on the damping ratio of the same circuit (paper's Fig. 2 vs Fig. 4 cross
/// check), here on a circuit whose true ζ is known exactly.
#[test]
fn stability_plot_agrees_with_transient_baseline() {
    let l: f64 = 1.0e-3;
    let cap: f64 = 1.0e-9;
    let r = 2.0 * 0.3 * (l / cap).sqrt();
    let (circuit, out) = series_rlc(r, l, cap);

    let analyzer = StabilityAnalyzer::new(circuit.clone(), fast_options(1.0e3, 1.0e7)).unwrap();
    let plot_estimate = analyzer.single_node(out).unwrap().estimate.unwrap();

    let overshoot = transient_overshoot(&circuit, out, 40.0e-9, 80.0e-6).unwrap();

    Tolerance::absolute(0.04).assert_close(
        "zeta",
        "stability plot vs transient baseline",
        plot_estimate.damping_ratio,
        overshoot.equivalent_damping,
    );
    Tolerance::absolute(8.0).assert_close(
        "percent overshoot",
        "stability plot vs transient baseline",
        plot_estimate.percent_overshoot,
        overshoot.percent_overshoot,
    );
}

/// The all-nodes scan of the combined op-amp + bias circuit must find at least
/// two distinct loops (the MHz main loop and the bias cell's local loop), with
/// the main loop grouping together the output-path nodes — the paper's
/// Table 2 scenario.
#[test]
fn all_nodes_finds_main_and_local_loops() {
    let (circuit, opamp_nodes, bias_nodes) =
        opamp_with_bias(&OpAmpParams::default(), &BiasParams::default());
    let analyzer = StabilityAnalyzer::new(circuit, fast_options(1.0e4, 1.0e9)).unwrap();
    let report = analyzer.all_nodes().unwrap();

    assert!(
        report.loops().len() >= 2,
        "expected at least two loops, got {}",
        report.loops().len()
    );

    // The op-amp output must belong to a loop in the MHz range.
    let main_freq = report
        .entries()
        .iter()
        .find(|e| e.node == opamp_nodes.output)
        .and_then(|e| e.natural_freq_hz())
        .expect("main loop visible at the output");
    assert!(
        main_freq > 5.0e5 && main_freq < 1.0e7,
        "main loop at {main_freq}"
    );

    // The bias cell's regulation loop must show up well above the main loop.
    let bias_freq = report
        .entries()
        .iter()
        .find(|e| e.node == bias_nodes.q3_collector)
        .and_then(|e| e.natural_freq_hz())
        .expect("local bias loop visible at the Q3 collector");
    assert!(
        bias_freq > 2.0 * main_freq,
        "bias loop at {bias_freq} vs main at {main_freq}"
    );

    // The report text renders and mentions the output node.
    let text = report.to_text();
    assert!(text.contains("out"));
}

/// Retuning the compensation (larger Miller capacitor, smaller load) must
/// increase the estimated phase margin — the workflow a designer follows
/// after the tool flags a marginal loop.
#[test]
fn compensation_improves_phase_margin() {
    let nominal = OpAmpParams::default();
    let improved = OpAmpParams {
        c1: 12.0e-12,
        cload: 100.0e-12,
        ..nominal
    };
    let pm_of = |params: &OpAmpParams| {
        let (circuit, nodes) = two_stage_buffer(params);
        let analyzer = StabilityAnalyzer::new(circuit, fast_options(1.0e3, 1.0e8)).unwrap();
        analyzer
            .single_node(nodes.output)
            .unwrap()
            .estimate
            .map(|e| e.phase_margin_exact_deg)
    };
    let pm_nominal = pm_of(&nominal).expect("nominal circuit peaks");
    // (If no peak remains at all, the loop became even better damped.)
    if let Some(pm_improved) = pm_of(&improved) {
        assert!(
            pm_improved > pm_nominal + 5.0,
            "improved {pm_improved} vs nominal {pm_nominal}"
        );
    }
}

/// The analyzer must leave the caller's circuit untouched (probing is
/// non-invasive), and the same analyzer can serve many queries.
#[test]
fn analyzer_is_reusable_and_non_invasive() {
    let (circuit, nodes) = two_stage_buffer(&OpAmpParams::default());
    let element_count = circuit.elements().len();
    let analyzer = StabilityAnalyzer::new(circuit.clone(), fast_options(1.0e3, 1.0e8)).unwrap();
    let a = analyzer.single_node(nodes.output).unwrap();
    let b = analyzer.single_node(nodes.stage1).unwrap();
    let c = analyzer.single_node(nodes.output).unwrap();
    assert_eq!(analyzer.circuit().elements().len(), element_count);
    assert_eq!(a.peak.map(|p| p.x), c.peak.map(|p| p.x));
    // Both nodes on the same loop agree on the natural frequency within a few
    // per cent (paper Table 2 shows the same behaviour).
    if let (Some(fa), Some(fb)) = (a.natural_freq_hz(), b.natural_freq_hz()) {
        Tolerance::relative(0.1).assert_close("natural frequency [Hz]", "stage1 vs output", fb, fa);
    }
}
