//! Integration tests at the transistor level: the CMOS two-stage op-amp and
//! the BJT/MOS bias cell exercise the nonlinear operating point, small-signal
//! linearization and the stability methodology end to end.

use loopscope::prelude::*;
use loopscope_circuits::opamp::mos_two_stage_buffer;
use loopscope_core::sweep::sweep_node;
use loopscope_validate::Tolerance;

fn options() -> StabilityOptions {
    StabilityOptions {
        f_start: 1.0e4,
        f_stop: 1.0e9,
        points_per_decade: 50,
        ..Default::default()
    }
}

/// The transistor-level buffer must bias up, and its output node must show the
/// main loop as a complex pole pair in the MHz range (the exact frequency
/// depends on the simplified device models; only the structure is asserted).
#[test]
fn mos_opamp_main_loop_is_visible() {
    let (circuit, nodes) = mos_two_stage_buffer(&OpAmpParams::default());
    let analyzer = StabilityAnalyzer::new(circuit, options()).unwrap();
    let result = analyzer.single_node(nodes.output).unwrap();
    let est = result
        .estimate
        .expect("the Miller-compensated buffer has a dominant complex pole pair");
    assert!(
        est.natural_freq_hz > 1.0e5 && est.natural_freq_hz < 1.0e9,
        "natural frequency {}",
        est.natural_freq_hz
    );
    assert!(est.damping_ratio > 0.0 && est.damping_ratio < 1.0);
}

/// The zero-TC bias cell: the regulation loop is visible at the Q3 collector,
/// and the paper's 1 pF compensation increases its damping ratio.
#[test]
fn bias_cell_compensation_increases_damping() {
    let run = |c_comp: f64| {
        let (circuit, nodes) = zero_tc_bias(&BiasParams {
            c_comp,
            ..Default::default()
        });
        let analyzer = StabilityAnalyzer::new(
            circuit,
            StabilityOptions {
                f_start: 1.0e5,
                f_stop: 1.0e10,
                points_per_decade: 60,
                ..Default::default()
            },
        )
        .unwrap();
        analyzer
            .single_node(nodes.q3_collector)
            .unwrap()
            .estimate
            .expect("local loop visible at the Q3 collector")
    };
    let before = run(0.0);
    let after = run(1.0e-12);
    assert!(
        before.natural_freq_hz > 1.0e7 && before.natural_freq_hz < 2.0e8,
        "local loop at {}",
        before.natural_freq_hz
    );
    assert!(
        after.damping_ratio > before.damping_ratio,
        "compensation must increase damping: {} vs {}",
        after.damping_ratio,
        before.damping_ratio
    );
    // Compensation damps the loop without relocating it: the natural
    // frequency stays in the same ballpark (shared comparator, loose band).
    Tolerance::relative(0.5).assert_close(
        "natural frequency [Hz]",
        "bias loop, 1 pF vs uncompensated",
        after.natural_freq_hz,
        before.natural_freq_hz,
    );
}

/// Corner sweep over the supply voltage of the bias cell: the loop must be
/// detected at every corner and the sweep table must render.
#[test]
fn bias_supply_corner_sweep() {
    let variants = [2.7, 3.3, 3.6].into_iter().map(|vdd| {
        let (circuit, _) = zero_tc_bias(&BiasParams {
            vdd,
            ..Default::default()
        });
        (format!("vdd={vdd}V"), circuit)
    });
    let sweep = sweep_node(
        variants,
        "bias_q3c",
        StabilityOptions {
            f_start: 1.0e5,
            f_stop: 1.0e10,
            points_per_decade: 50,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(sweep.points.len(), 3);
    assert!(sweep.points.iter().all(|p| p.estimate.is_some()));
    let worst = sweep.worst_case().expect("worst corner exists");
    // The reported worst case must be exactly the corner with the lowest
    // damping ratio among the sweep points.
    let min_zeta = sweep
        .points
        .iter()
        .filter_map(|p| p.estimate.as_ref().map(|e| e.damping_ratio))
        .fold(f64::INFINITY, f64::min);
    let worst_zeta = worst
        .estimate
        .as_ref()
        .expect("worst has estimate")
        .damping_ratio;
    Tolerance::absolute(1.0e-12).assert_close("zeta", "worst corner", worst_zeta, min_zeta);
    assert!(sweep.to_text().contains("vdd=3.3V"));
}
